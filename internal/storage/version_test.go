package storage

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// stripHeaderWriter removes one response header at write time — used
// to impersonate a server that predates the X-MCS-API stamp.
type stripHeaderWriter struct {
	http.ResponseWriter
	key   string
	wrote bool
}

func (w *stripHeaderWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.Header().Del(w.key)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *stripHeaderWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// legacyWrap makes a modern front-end handler look like a pre-/v1
// server: versioned paths 404 without the API stamp, the stamp is
// stripped from every response, and the client's version advertisement
// is dropped so errors come back in the legacy body.
func legacyWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			http.NotFound(w, r)
			return
		}
		r.Header.Del(APIHeader)
		next.ServeHTTP(&stripHeaderWriter{ResponseWriter: w, key: APIHeader}, r)
	})
}

// TestV1ClientFallsBackToLegacyServer: a negotiated client meeting an
// old server must detect the bare 404, re-issue on the legacy paths,
// and remember the verdict for the host.
func TestV1ClientFallsBackToLegacyServer(t *testing.T) {
	var mu sync.Mutex
	var paths []string
	record := func(next http.Handler) http.Handler {
		inner := legacyWrap(next)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			paths = append(paths, r.URL.Path)
			mu.Unlock()
			inner.ServeHTTP(w, r)
		})
	}
	client, _, cleanup := newFlakyService(t, record)
	defer cleanup()

	data := chunkedData(t, 31, ChunkSize+123)
	res, err := client.StoreFile("legacy.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip through legacy server returned different bytes")
	}

	mu.Lock()
	defer mu.Unlock()
	var v1 int
	for _, p := range paths {
		if strings.HasPrefix(p, "/v1/") {
			v1++
		}
	}
	// Exactly one probe pays the negotiation cost; everything after the
	// bare 404 stays on the legacy dialect.
	if v1 != 1 {
		t.Errorf("saw %d /v1 requests, want exactly 1 probe (paths: %v)", v1, paths)
	}
	if len(paths) <= v1 {
		t.Fatal("no legacy requests recorded")
	}
}

// TestLegacyClientAgainstV1Server: a client pinned to the old dialect
// must work against a modern server via the alias routes.
func TestLegacyClientAgainstV1Server(t *testing.T) {
	var mu sync.Mutex
	var paths []string
	record := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			paths = append(paths, r.URL.Path)
			mu.Unlock()
			next.ServeHTTP(w, r)
		})
	}
	client, _, cleanup := newFlakyService(t, record)
	defer cleanup()
	client.LegacyAPI = true

	data := chunkedData(t, 32, ChunkSize+55)
	res, err := client.StoreFile("pinned.bin", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.RetrieveFile(res.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("legacy client round trip returned different bytes")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range paths {
		if strings.HasPrefix(p, "/v1/") {
			t.Errorf("legacy-pinned client sent a versioned request: %s", p)
		}
	}
}

// TestAPIErrorEnvelopeMapsToSentinels checks the wire error contract:
// an envelope rendered by the server decodes on the client into an
// error that errors.Is-matches the original sentinel, with the
// declared retryability honored by the retry policy.
func TestAPIErrorEnvelopeMapsToSentinels(t *testing.T) {
	cases := []struct {
		status    int
		err       error
		code      string
		retryable bool
	}{
		{http.StatusBadRequest, ErrBadDigest, CodeBadDigest, false},
		{http.StatusNotFound, ErrNotFound, CodeNotFound, false},
		{http.StatusRequestEntityTooLarge, ErrTooLarge, CodeTooLarge, false},
		{http.StatusServiceUnavailable, ErrOverloaded, CodeOverloaded, true},
		{http.StatusServiceUnavailable, ErrUnavailable, CodeUnavailable, true},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, "/v1/chunk/x", nil)
			writeAPIError(rec, req, tc.status, tc.err)
			resp := rec.Result()
			defer resp.Body.Close()
			// The recorder has no advertiseV1 middleware; stamp the
			// header the way a real server response carries it.
			resp.Header.Set(APIHeader, APIV1)

			decoded := decodeError(resp)
			var ae *APIError
			if !errors.As(decoded, &ae) {
				t.Fatalf("decoded %T, want *APIError", decoded)
			}
			if ae.Code != tc.code {
				t.Errorf("code = %s, want %s", ae.Code, tc.code)
			}
			if ae.Status != tc.status {
				t.Errorf("status = %d, want %d", ae.Status, tc.status)
			}
			if !errors.Is(decoded, tc.err) {
				t.Errorf("errors.Is(%v, %v) = false across the wire", decoded, tc.err)
			}
			if got := retryable(decoded); got != tc.retryable {
				t.Errorf("retryable = %v, want %v", got, tc.retryable)
			}
		})
	}
}

// TestLegacyErrorBodyStillMapsNotFound: legacy servers answer with the
// old {"error": ...} body; 404 detection must survive without the
// envelope.
func TestLegacyErrorBodyStillMapsNotFound(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, http.StatusNotFound, errors.New("no such chunk"))
	resp := rec.Result()
	defer resp.Body.Close()
	decoded := decodeError(resp)
	if !IsNotFound(decoded) {
		t.Fatalf("legacy 404 body not recognized: %v", decoded)
	}
}

// TestStatChunksBatch exercises the client-facing batched stat: one
// request resolves many digests.
func TestStatChunksBatch(t *testing.T) {
	store := NewMemStore()
	meta := NewMetadata()
	fe := NewFrontEnd(FrontEndConfig{Store: store, Meta: meta})
	feSrv := httptest.NewServer(fe.Handler())
	defer feSrv.Close()
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()
	meta.AddFrontEnd(feSrv.URL)
	client := NewClient(ClientConfig{MetaURL: metaSrv.URL, UserID: 1, DeviceID: 1})

	data := chunkedData(t, 33, 2*ChunkSize+9)
	if _, err := client.StoreFile("stat.bin", data); err != nil {
		t.Fatal(err)
	}
	sums := SplitSums(data)
	missing, _ := replChunk(77, 4<<10)
	query := append(sumStrings(sums), missing.String())

	sr, err := client.StatChunks(feSrv.URL, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.MissingMD5s) != 1 || sr.MissingMD5s[0] != missing.String() {
		t.Fatalf("missing = %v, want just %s", sr.MissingMD5s, missing)
	}
}
