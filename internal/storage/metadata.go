package storage

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/metrics"
	"mcloud/internal/tracing"
)

// FileMeta is the metadata server's record of one stored file version.
type FileMeta struct {
	Name      string
	Size      int64
	FileMD5   Sum
	ChunkMD5s []Sum
	URL       string
}

// MetaService is the slice of the metadata plane a storage front-end
// depends on. A front-end colocated with the metadata server uses
// *Metadata directly; a clustered front-end on another node uses
// RemoteMeta, which speaks the same operations over HTTP. Every call
// names the metadata shard it targets — the shard the client's
// store-check or resolve handshake pinned — so the namespace can be
// split across shard groups while a front-end stays a dumb router.
// An unsharded deployment is the one-shard special case: shard 0.
type MetaService interface {
	// Commit finalizes a completed upload on the given shard, making
	// the content available for dedup and retrieval.
	Commit(shard int, url string, chunkMD5s []Sum) error
	// Lookup returns the file record for a content hash from the
	// given shard's catalog.
	Lookup(shard int, sum Sum) (FileMeta, error)
}

// ctxMetaService is the context-aware superset of MetaService; both
// *Metadata and *RemoteMeta implement it. The context carries the
// caller's trace (WAL spans join it) and cancellation.
type ctxMetaService interface {
	CommitCtx(ctx context.Context, shard int, url string, chunkMD5s []Sum) error
	LookupCtx(ctx context.Context, shard int, sum Sum) (FileMeta, error)
}

// metaCommit commits via svc, propagating ctx when svc supports it —
// the same downgrade pattern PutCtx uses for chunk stores.
func metaCommit(ctx context.Context, svc MetaService, shard int, url string, chunkMD5s []Sum) error {
	if c, ok := svc.(ctxMetaService); ok {
		return c.CommitCtx(ctx, shard, url, chunkMD5s)
	}
	return svc.Commit(shard, url, chunkMD5s)
}

// metaLookup resolves via svc, propagating ctx when svc supports it.
func metaLookup(ctx context.Context, svc MetaService, shard int, sum Sum) (FileMeta, error) {
	if c, ok := svc.(ctxMetaService); ok {
		return c.LookupCtx(ctx, shard, sum)
	}
	return svc.Lookup(shard, sum)
}

// Metadata is the metadata service (§2.1): it owns user namespaces,
// performs file-level deduplication, maps URLs to content hashes, and
// assigns storage front-ends. It is safe for concurrent use.
type Metadata struct {
	mu        sync.RWMutex
	byMD5     map[Sum]*FileMeta               // content catalog
	byURL     map[string]*FileMeta            // URL resolution
	users     map[uint64]map[string]*FileMeta // user namespace: URL -> file
	links     map[string]int                  // URL -> number of user namespaces linking it
	frontends []string
	nextFE    int
	urlSeq    int64

	dedupHits int64 // uploads avoided entirely by file-level dedup
	checks    int64

	// Durability + replication state. lastSeq numbers every applied
	// mutation; tail buffers the most recent records so standbys can
	// pull them without reading the log back from disk; wal (nil for a
	// RAM-only server) makes mutations crash-safe. A standby applies
	// only replicated records and rejects direct writes.
	lastSeq uint64
	tail    []MetaWALRecord
	wal     *MetaWAL
	standby bool
	primary string // primary's base URL, for standby error messages

	// Leadership state. epoch is the term this node believes it is in;
	// it rises only through a walOpEpoch fence record (promotion) or by
	// adopting a primary's epoch during standby replication. fenced is
	// set when a higher epoch is observed on the wire while this node
	// is acting as a primary: it has been deposed, and every mutation
	// fails with ErrFenced until it rejoins as a standby. fencedBy
	// remembers the highest remote epoch seen, so a later promotion
	// jumps above it.
	epoch    uint64
	fenced   bool
	fencedBy uint64

	// notify is closed and replaced whenever a record is applied; pull
	// long-polling parks on it so standbys learn about new records in
	// one RTT instead of a poll interval.
	notify chan struct{}

	// puller is the standby pull loop feeding this node, registered by
	// NewMetaStandby. Promotion closes it synchronously before local
	// writes resume, so a promotion can never race an in-flight
	// replicated batch.
	puller interface{ Close() }

	// Semi-sync replication ack state, under its own mutex (it is
	// touched on every pull and every durable write, but never inside
	// the catalog lock's hot paths). replSeq is the highest sequence a
	// standby has confirmed — a pull with After=N acknowledges that the
	// standby has durably applied through N. replSeen is the last pull
	// time; zero means no standby is attached and writes are acked on
	// local fsync alone. replCh is closed and replaced on every ack so
	// waiters wake without polling.
	replMu       sync.Mutex
	replSeq      uint64
	replSeen     time.Time
	replCh       chan struct{}
	syncTimeouts atomic.Int64

	// feHealth is the per-front-end circuit breaker consulted by
	// pickFrontEnd, so clients are not handed a dead front-end URL
	// while it is in cooldown.
	feHealth *cluster.Health

	// Shard identity. shardID is the user-hash range this node owns;
	// shardMap is the versioned cluster-wide assignment (nil for an
	// unsharded node, which behaves as the sole shard 0 under map
	// version 0). Both are set once by SetShard before serving.
	shardID  int
	shardMap *cluster.MetaShardMap

	// legacyAPI gates the unversioned /meta/* aliases in Handler;
	// default on for one release (see LegacySunset).
	legacyAPI bool

	met *metadataMetrics // nil until Instrument; set before serving
}

// metaSyncTimeout bounds how long an acked write waits for the
// attached standby to confirm replication. On expiry the standby is
// detached (writes proceed on local durability alone — availability
// over sync replication) and the stalled write fails retryably. Kept
// under RemoteMeta's per-request timeout so front-ends see the error,
// not a hang.
const metaSyncTimeout = 3 * time.Second

// metaTailCap bounds the in-memory replication tail. A standby that
// falls further behind than this is reseeded with a full snapshot.
const metaTailCap = 8192

// metadataMetrics holds the pre-resolved latency histograms for the
// metadata operations.
type metadataMetrics struct {
	storeCheck, resolve, commit, lookup *metrics.Histogram
	shardSkew                           *metrics.Counter
}

// Instrument registers the metadata server's gauges and latency
// histograms, every series labeled with the shard this node owns so a
// scrape across a sharded plane stays disambiguated. Call it once,
// after SetShard and before the server starts handling requests.
func (m *Metadata) Instrument(reg *metrics.Registry) {
	shard := []string{"shard", strconv.Itoa(m.ShardID())}
	reg.GaugeFunc("mcs_meta_files", "File records (committed or reserved URLs).",
		func() float64 { return float64(m.Stats().Files) }, shard...)
	reg.GaugeFunc("mcs_meta_users", "User namespaces holding at least one file.",
		func() float64 { return float64(m.Stats().Users) }, shard...)
	reg.CounterFunc("mcs_meta_checks_total", "Dedup store-check requests handled.",
		func() float64 { return float64(m.Stats().Checks) }, shard...)
	reg.CounterFunc("mcs_meta_dedup_hits_total", "Uploads avoided entirely by file-level dedup.",
		func() float64 { return float64(m.Stats().DedupHits) }, shard...)
	help := "Metadata operation latency by operation."
	opLabels := func(op string) []string { return append([]string{"op", op}, shard...) }
	m.met = &metadataMetrics{
		storeCheck: reg.Histogram("mcs_meta_op_seconds", help, opLabels("store_check")...),
		resolve:    reg.Histogram("mcs_meta_op_seconds", help, opLabels("resolve")...),
		commit:     reg.Histogram("mcs_meta_op_seconds", help, opLabels("commit")...),
		lookup:     reg.Histogram("mcs_meta_op_seconds", help, opLabels("lookup")...),
		shardSkew: reg.Counter("mcs_meta_shard_skew_total",
			"Requests that routed with a shard-map version different from this node's.", shard...),
	}
	reg.GaugeFunc("mcs_meta_wal_last_seq", "Newest applied metadata mutation sequence.",
		func() float64 { return float64(m.LastSeq()) }, shard...)
	reg.GaugeFunc("mcs_meta_epoch", "Current metadata leadership epoch (term).",
		func() float64 { return float64(m.Epoch()) }, shard...)
	reg.GaugeFunc("mcs_meta_fenced", "1 when this node was deposed by a higher epoch and rejects writes.",
		func() float64 {
			if m.Fenced() {
				return 1
			}
			return 0
		}, shard...)
	reg.GaugeFunc("mcs_meta_repl_ack_seq", "Highest mutation sequence the attached standby has acknowledged.",
		func() float64 {
			m.replMu.Lock()
			defer m.replMu.Unlock()
			return float64(m.replSeq)
		}, shard...)
	reg.CounterFunc("mcs_meta_sync_timeouts_total", "Writes that timed out waiting for standby acknowledgement (standby detached).",
		func() float64 { return float64(m.syncTimeouts.Load()) }, shard...)
	reg.GaugeFunc("mcs_meta_frontends_down", "Registered front-ends currently inside a breaker down window.",
		func() float64 { return float64(m.feHealth.Down()) }, shard...)
	reg.GaugeFunc("mcs_meta_shard_map_version", "Shard-map version this node serves under (0 = unsharded).",
		func() float64 { return float64(m.MapVersion()) }, shard...)
	if m.wal != nil {
		m.wal.Instrument(reg)
		reg.GaugeFunc("mcs_meta_wal_records", "WAL records not yet covered by a checkpoint.",
			func() float64 { return float64(m.LastSeq() - m.wal.Stats().CheckpointSeq) }, shard...)
	}
}

// NewMetadata returns a metadata server that will direct clients to
// the given front-end base URLs (round-robin; the measured service
// picks "the closest front-end", which degenerates to round-robin on a
// single site).
func NewMetadata(frontends ...string) *Metadata {
	return &Metadata{
		byMD5:     make(map[Sum]*FileMeta),
		byURL:     make(map[string]*FileMeta),
		users:     make(map[uint64]map[string]*FileMeta),
		links:     make(map[string]int),
		frontends: frontends,
		notify:    make(chan struct{}),
		replCh:    make(chan struct{}),
		feHealth:  cluster.NewHealth(2, 5*time.Second),
		legacyAPI: true,
	}
}

// SetShard assigns this node its place in a sharded metadata plane:
// the user-hash range it owns and the versioned map it owns it under.
// Call before serving; an un-set node is the sole shard 0 of an
// unsharded (map version 0) deployment.
func (m *Metadata) SetShard(id int, smap *cluster.MetaShardMap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardID = id
	m.shardMap = smap
}

// SetLegacyAPI gates the unversioned /meta/* aliases (default on).
// Call before Handler.
func (m *Metadata) SetLegacyAPI(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.legacyAPI = on
}

// ShardID returns the shard this node owns.
func (m *Metadata) ShardID() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.shardID
}

// MapVersion returns the shard-map version this node serves under
// (0 = unsharded).
func (m *Metadata) MapVersion() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.shardMap == nil {
		return 0
	}
	return m.shardMap.Version
}

// ShardMapView returns the map served at /v1/meta/shards: the real
// map when sharded, else a synthesized single-shard map at version 0
// whose empty endpoint list tells clients to keep their bootstrap
// endpoints.
func (m *Metadata) ShardMapView() cluster.MetaShardMap {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.shardMap == nil {
		return cluster.MetaShardMap{Version: 0, Shards: []cluster.MetaShard{{ID: m.shardID}}}
	}
	return *m.shardMap
}

// assignmentLocked builds the authoritative redirect payload for a
// wrong_shard rejection (caller holds mu).
func (m *Metadata) assignmentLocked(want int) ShardAssignment {
	a := ShardAssignment{Shard: want}
	if m.shardMap != nil {
		a.MapVersion = m.shardMap.Version
		a.Endpoints = append([]string(nil), m.shardMap.Endpoints(want)...)
	}
	return a
}

// userShardGuardLocked rejects an operation on a user this shard does
// not own, attaching the owner's assignment so the client converges
// in one bounce (caller holds mu). Checked before the write guard:
// "you are talking to the wrong shard group entirely" must win over
// "this group member is a standby", or a misrouted client would
// rotate forever inside the wrong group.
func (m *Metadata) userShardGuardLocked(user uint64) error {
	if m.shardMap == nil {
		return nil
	}
	if want := m.shardMap.ShardFor(user); want != m.shardID {
		return &wrongShardError{assignment: m.assignmentLocked(want)}
	}
	return nil
}

// shardGuardLocked rejects an operation explicitly pinned to a shard
// this node is not (caller holds mu). The pin comes from an earlier
// store-check/resolve response, so a mismatch means the caller's
// routing table is stale for that shard.
func (m *Metadata) shardGuardLocked(shard int) error {
	if shard != m.shardID {
		return &wrongShardError{assignment: m.assignmentLocked(shard)}
	}
	return nil
}

// AddFrontEnd registers another front-end.
func (m *Metadata) AddFrontEnd(baseURL string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frontends = append(m.frontends, baseURL)
}

// pickFrontEnd returns the next front-end whose breaker is closed,
// advancing the round-robin cursor past ones in cooldown (caller
// holds mu). When every breaker is open the plain rotation wins: a
// maybe-dead assignment beats refusing the upload, and the breaker's
// half-open probe will re-admit recovered nodes.
func (m *Metadata) pickFrontEnd() string {
	n := len(m.frontends)
	if n == 0 {
		return ""
	}
	for i := 0; i < n; i++ {
		fe := m.frontends[m.nextFE%n]
		m.nextFE++
		if m.feHealth.Alive(fe) {
			return fe
		}
	}
	fe := m.frontends[m.nextFE%n]
	m.nextFE++
	return fe
}

// ReportFrontEnd feeds the front-end breaker: ok=false counts toward
// opening it, ok=true closes it. Called by the prober and available to
// any caller that observes a front-end failing.
func (m *Metadata) ReportFrontEnd(baseURL string, ok bool) {
	if ok {
		m.feHealth.ReportSuccess(baseURL)
	} else {
		m.feHealth.ReportFailure(baseURL)
	}
}

// ProbeFrontEnds starts a background prober that marks each registered
// front-end alive or dead by hitting its /v1/cluster/info endpoint.
// Any HTTP response counts as alive — the breaker guards against dead
// processes, not degraded ones. Returns a stop function.
func (m *Metadata) ProbeFrontEnds(httpc *http.Client, interval time.Duration) (stop func()) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			m.mu.RLock()
			fes := append([]string(nil), m.frontends...)
			m.mu.RUnlock()
			for _, fe := range fes {
				req, err := http.NewRequest(http.MethodGet, fe+"/v1/cluster/info", nil)
				if err != nil {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				resp, err := httpc.Do(req.WithContext(ctx))
				if resp != nil {
					resp.Body.Close()
				}
				cancel()
				m.ReportFrontEnd(fe, err == nil)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// StoreCheck implements the dedup handshake: if the content is known,
// it links the file into the user's namespace and reports Duplicate.
// Otherwise it reserves a URL and directs the client to a front-end.
func (m *Metadata) StoreCheck(req StoreCheckRequest) (StoreCheckResponse, error) {
	return m.StoreCheckCtx(context.Background(), req)
}

// StoreCheckCtx is StoreCheck with trace propagation: when a WAL is
// attached, the append and fsync waits show up as spans under the
// caller's trace.
func (m *Metadata) StoreCheckCtx(ctx context.Context, req StoreCheckRequest) (StoreCheckResponse, error) {
	if met := m.met; met != nil {
		defer met.storeCheck.ObserveSince(time.Now())
	}
	sum, err := ParseSum(req.FileMD5)
	if err != nil {
		return StoreCheckResponse{}, err
	}
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.userShardGuardLocked(req.UserID); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return StoreCheckResponse{}, err
	}
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return StoreCheckResponse{}, err
	}
	m.checks++
	var rec MetaWALRecord
	var resp StoreCheckResponse
	resp.Shard = m.shardID
	if f, ok := m.byMD5[sum]; ok {
		m.dedupHits++
		rec = MetaWALRecord{Op: walOpLink, User: req.UserID, URL: f.URL}
		resp.Duplicate, resp.URL = true, f.URL
	} else {
		// The record is provisional until Commit; it reserves the URL
		// but enters the dedup catalog only when chunks land. The
		// reserved sequence rides in the record so replay reproduces
		// URL assignment exactly.
		url := fmt.Sprintf("/f/%x/%d", sum[:4], m.urlSeq+1)
		rec = MetaWALRecord{
			Op: walOpReserve, User: req.UserID, URL: url,
			Name: req.Name, Size: req.Size, FileMD5: req.FileMD5,
			URLSeq: m.urlSeq + 1,
		}
		resp.FrontEnd, resp.URL = m.pickFrontEnd(), url
	}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	app.EndErr(err)
	if err != nil {
		return StoreCheckResponse{}, err
	}
	return resp, m.waitDurable(ctx, lsn, rec.Seq)
}

// linkLocked adds the file to a user's namespace (caller holds mu).
func (m *Metadata) linkLocked(user uint64, f *FileMeta) {
	ns, ok := m.users[user]
	if !ok {
		ns = make(map[string]*FileMeta)
		m.users[user] = ns
	}
	if _, already := ns[f.URL]; !already {
		m.links[f.URL]++
	}
	ns[f.URL] = f
}

// Unlink removes a file from one user's namespace. When the last
// namespace reference goes away, the catalog entry is dropped and the
// file's chunk digests are returned with lastRef = true so the caller
// can release chunk references (see DeleteFile). Deduplicated content
// linked by other users survives.
func (m *Metadata) Unlink(user uint64, url string) (chunks []Sum, lastRef bool, err error) {
	return m.UnlinkCtx(context.Background(), user, url)
}

// UnlinkCtx is Unlink with trace propagation (see StoreCheckCtx).
func (m *Metadata) UnlinkCtx(ctx context.Context, user uint64, url string) (chunks []Sum, lastRef bool, err error) {
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.userShardGuardLocked(user); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return nil, false, err
	}
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return nil, false, err
	}
	ns, ok := m.users[user]
	if !ok {
		m.mu.Unlock()
		app.End()
		return nil, false, ErrNotFound
	}
	f, ok := ns[url]
	if !ok {
		m.mu.Unlock()
		app.End()
		return nil, false, ErrNotFound
	}
	chunks = f.ChunkMD5s
	lastRef = m.links[url] <= 1
	rec := MetaWALRecord{Op: walOpUnlink, User: user, URL: url}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	app.EndErr(err)
	if err != nil {
		return nil, false, err
	}
	return chunks, lastRef, m.waitDurable(ctx, lsn, rec.Seq)
}

// Commit finalizes a file upload: the front-end calls it after all
// chunks are stored, making the content available for dedup and
// retrieval. shard is the pin from the store-check that reserved url.
func (m *Metadata) Commit(shard int, url string, chunkMD5s []Sum) error {
	return m.CommitCtx(context.Background(), shard, url, chunkMD5s)
}

// CommitCtx is Commit with trace propagation (see StoreCheckCtx).
func (m *Metadata) CommitCtx(ctx context.Context, shard int, url string, chunkMD5s []Sum) error {
	if met := m.met; met != nil {
		defer met.commit.ObserveSince(time.Now())
	}
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.shardGuardLocked(shard); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return err
	}
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return err
	}
	if _, ok := m.byURL[url]; !ok {
		m.mu.Unlock()
		app.End()
		return ErrNotFound
	}
	rec := MetaWALRecord{Op: walOpCommit, URL: url, ChunkMD5s: sumStrings(chunkMD5s)}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	app.EndErr(err)
	if err != nil {
		return err
	}
	return m.waitDurable(ctx, lsn, rec.Seq)
}

// writeGuardLocked rejects mutations on a node that does not hold the
// write lease: a standby, or a deposed primary that observed a higher
// epoch (caller holds mu). Leadership is the pair (not standby, not
// fenced) — a bare standby bool is not enough, because a SIGKILLed
// primary restarting from its own WAL comes back with standby=false
// and must still be stopped from forking history. Both errors map to
// retryable typed envelopes over /v1, so clients fail over rather
// than surface the rejection.
func (m *Metadata) writeGuardLocked() error {
	if m.fenced {
		return fmt.Errorf("%w: primary at epoch %d deposed by epoch %d", ErrFenced, m.epoch, m.fencedBy)
	}
	if m.standby {
		return fmt.Errorf("%w: metadata standby of %s is read-only", ErrNotPrimary, m.primary)
	}
	return nil
}

// Epoch returns the node's current leadership term.
func (m *Metadata) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// Fenced reports whether this node has been deposed by a higher epoch.
func (m *Metadata) Fenced() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fenced
}

// ObserveEpoch folds a remotely-observed epoch into this node's view.
// A primary that sees a higher epoch than its own has been deposed —
// someone promoted past it while it was gone — and fences itself so no
// further writes land on the forked timeline. A standby just records
// the observation (its writes are rejected anyway, and its pull loop
// adopts the primary's epoch through the replication stream).
func (m *Metadata) ObserveEpoch(remote uint64) {
	if remote == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if remote > m.epoch {
		if !m.standby {
			m.fenced = true
		}
		if remote > m.fencedBy {
			m.fencedBy = remote
		}
	}
}

// logApplyLocked assigns the next sequence number, applies the record
// through the shared mutation path, buffers it for replication, and
// appends it to the WAL (caller holds mu for writing). The returned
// LSN must be passed to waitDurable after the lock is released; until
// then the mutation is applied but not yet acknowledged durable.
func (m *Metadata) logApplyLocked(rec *MetaWALRecord) (int64, error) {
	rec.Seq = m.lastSeq + 1
	rec.Epoch = m.epoch
	if err := m.applyRecordLocked(rec); err != nil {
		return 0, err
	}
	m.lastSeq = rec.Seq
	m.tailAppendLocked(*rec)
	// Wake long-poll pulls parked on the previous notify channel.
	close(m.notify)
	m.notify = make(chan struct{})
	if m.wal == nil {
		return 0, nil
	}
	return m.wal.Append(rec)
}

// applyRecordLocked is the single mutation path: live operations,
// recovery replay, and standby apply all mutate the maps through it,
// so a replayed log always reproduces the live state (caller holds mu
// for writing).
func (m *Metadata) applyRecordLocked(rec *MetaWALRecord) error {
	// The epoch rides on every record; replay and standby apply adopt
	// rises as they happen (the live path is a no-op — logApplyLocked
	// stamped rec.Epoch from m.epoch).
	if rec.Epoch > m.epoch {
		m.epoch = rec.Epoch
	}
	switch rec.Op {
	case walOpEpoch:
		// Leadership fence: no catalog change, the epoch bump above is
		// the whole mutation.
	case walOpReserve:
		sum, err := ParseSum(rec.FileMD5)
		if err != nil {
			return fmt.Errorf("storage: meta apply reserve: %w", err)
		}
		f := &FileMeta{Name: rec.Name, Size: rec.Size, FileMD5: sum, URL: rec.URL}
		m.byURL[rec.URL] = f
		m.linkLocked(rec.User, f)
		if rec.URLSeq > m.urlSeq {
			m.urlSeq = rec.URLSeq
		}
	case walOpLink:
		f, ok := m.byURL[rec.URL]
		if !ok {
			return fmt.Errorf("storage: meta apply link: unknown URL %q", rec.URL)
		}
		m.linkLocked(rec.User, f)
	case walOpCommit:
		f, ok := m.byURL[rec.URL]
		if !ok {
			return fmt.Errorf("storage: meta apply commit: unknown URL %q", rec.URL)
		}
		sums, err := parseSums(rec.ChunkMD5s)
		if err != nil {
			return fmt.Errorf("storage: meta apply commit: %w", err)
		}
		f.ChunkMD5s = sums
		m.byMD5[f.FileMD5] = f
	case walOpUnlink:
		ns, ok := m.users[rec.User]
		if !ok {
			return fmt.Errorf("storage: meta apply unlink: unknown user %d", rec.User)
		}
		f, ok := ns[rec.URL]
		if !ok {
			return fmt.Errorf("storage: meta apply unlink: user %d has no %q", rec.User, rec.URL)
		}
		delete(ns, rec.URL)
		if len(ns) == 0 {
			delete(m.users, rec.User)
		}
		m.links[rec.URL]--
		if m.links[rec.URL] <= 0 {
			delete(m.links, rec.URL)
			delete(m.byURL, rec.URL)
			delete(m.byMD5, f.FileMD5)
		}
	default:
		return fmt.Errorf("storage: meta apply: unknown op %q", rec.Op)
	}
	return nil
}

// tailAppendLocked buffers a record for standby pulls, dropping the
// oldest quarter when full — the tail stays contiguous, and a standby
// that needs older records is reseeded with a snapshot (caller holds
// mu for writing).
func (m *Metadata) tailAppendLocked(rec MetaWALRecord) {
	if len(m.tail) >= metaTailCap {
		n := copy(m.tail, m.tail[metaTailCap/4:])
		m.tail = m.tail[:n]
	}
	m.tail = append(m.tail, rec)
}

// walSpan opens a WAL-append tracing span when durability is on; the
// returned span is nil-safe.
func (m *Metadata) walSpan(ctx context.Context, name string) *tracing.Span {
	if m.wal == nil {
		return nil
	}
	return tracing.ChildFromContext(ctx, tracing.CompMeta, name)
}

// waitDurable blocks until the record behind lsn is fsync-covered,
// tracing the group-commit wait, and then — when a standby is
// attached — until the standby has confirmed replication through seq.
// That second wait is what makes "acked" mean "survives losing the
// primary": a commit answered 200 is already applied and fsynced on
// the standby, so an automatic promotion loses nothing.
func (m *Metadata) waitDurable(ctx context.Context, lsn int64, seq uint64) error {
	if m.wal == nil || lsn == 0 {
		return nil
	}
	fs := tracing.ChildFromContext(ctx, tracing.CompMeta, tracing.SpanWALFsync)
	err := m.wal.WaitDurable(lsn)
	fs.EndErr(err)
	if err != nil {
		return err
	}
	return m.waitReplicated(ctx, seq)
}

// noteStandbyPull records a standby's pull as a replication ack: a
// pull asking for records after N confirms the standby has durably
// applied through N. Also the primary's lease renewal signal.
func (m *Metadata) noteStandbyPull(after uint64) {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	m.replSeen = time.Now()
	if after > m.replSeq {
		m.replSeq = after
	}
	close(m.replCh)
	m.replCh = make(chan struct{})
}

// waitReplicated blocks until the attached standby has acknowledged
// seq, the sync timeout lapses, or ctx is done. On timeout the standby
// is detached — writes fall back to local-durability acks (the
// availability side of semi-sync) — and the stalled write fails with a
// retryable error so the client does not treat it as replicated.
func (m *Metadata) waitReplicated(ctx context.Context, seq uint64) error {
	deadline := time.Now().Add(metaSyncTimeout)
	for {
		m.replMu.Lock()
		if m.replSeen.IsZero() || m.replSeq >= seq {
			m.replMu.Unlock()
			return nil
		}
		ch := m.replCh
		m.replMu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			m.replMu.Lock()
			// Re-check under the lock; the ack may have raced the timer.
			if m.replSeen.IsZero() || m.replSeq >= seq {
				m.replMu.Unlock()
				return nil
			}
			m.replSeen = time.Time{} // detach the stalled standby
			m.replMu.Unlock()
			m.syncTimeouts.Add(1)
			return fmt.Errorf("%w: standby did not acknowledge seq %d within %v", ErrUnavailable, seq, metaSyncTimeout)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
}

// Resolve maps a file URL to its content hash and a front-end, for
// retrievals. Unlike the namespace writes, resolve carries NO
// user-shard guard: a URL is a shareable capability, resolvable by
// any user, and it lives on the shard of the user who stored it — a
// shard the requester's own hash says nothing about. A miss here is
// an honest not_found for this shard; sharded clients scatter the
// resolve across the remaining shards before giving up.
func (m *Metadata) Resolve(req ResolveRequest) (ResolveResponse, error) {
	if met := m.met; met != nil {
		defer met.resolve.ObserveSince(time.Now())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.byURL[req.URL]
	if !ok {
		return ResolveResponse{}, ErrNotFound
	}
	return ResolveResponse{
		FileMD5:  f.FileMD5.String(),
		Size:     f.Size,
		FrontEnd: m.pickFrontEnd(),
		Shard:    m.shardID,
	}, nil
}

// LookupCtx is Lookup; the context is accepted for interface symmetry
// (reads don't touch the WAL, so there is nothing to trace here).
func (m *Metadata) LookupCtx(_ context.Context, shard int, sum Sum) (FileMeta, error) {
	return m.Lookup(shard, sum)
}

// Lookup returns the file record for a content hash from this shard's
// catalog. shard is the pin from the resolve that named the hash.
func (m *Metadata) Lookup(shard int, sum Sum) (FileMeta, error) {
	if met := m.met; met != nil {
		defer met.lookup.ObserveSince(time.Now())
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.shardGuardLocked(shard); err != nil {
		return FileMeta{}, err
	}
	f, ok := m.byMD5[sum]
	if !ok {
		return FileMeta{}, ErrNotFound
	}
	return *f, nil
}

// LookupURL returns the file record behind a URL even before commit.
func (m *Metadata) LookupURL(url string) (FileMeta, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.byURL[url]
	if !ok {
		return FileMeta{}, ErrNotFound
	}
	return *f, nil
}

// UserFiles lists the URLs in a user's namespace.
func (m *Metadata) UserFiles(user uint64) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var urls []string
	for u := range m.users[user] {
		urls = append(urls, u)
	}
	return urls
}

// MetaStats reports metadata server counters.
type MetaStats struct {
	Files     int
	Users     int
	Checks    int64
	DedupHits int64
}

// Stats returns a snapshot of the counters.
func (m *Metadata) Stats() MetaStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return MetaStats{
		Files:     len(m.byURL),
		Users:     len(m.users),
		Checks:    m.checks,
		DedupHits: m.dedupHits,
	}
}

// CommitRequest is the wire form of MetaService.Commit, used by
// clustered front-ends without a colocated metadata server.
type CommitRequest struct {
	Shard     int      `json:"shard"`
	URL       string   `json:"url"`
	ChunkMD5s []string `json:"chunk_md5s"`
}

// LookupRequest is the wire form of MetaService.Lookup.
type LookupRequest struct {
	Shard   int    `json:"shard"`
	FileMD5 string `json:"file_md5"`
}

// LookupResponse carries a FileMeta over the wire.
type LookupResponse struct {
	Name      string   `json:"name"`
	Size      int64    `json:"size"`
	FileMD5   string   `json:"file_md5"`
	ChunkMD5s []string `json:"chunk_md5s"`
	URL       string   `json:"url"`
}

// MetaUserInfo is one row of the /v1/meta/users census: a user
// namespace held by this shard, and whether the current map says it
// belongs elsewhere (a resharding leftover).
type MetaUserInfo struct {
	User      uint64 `json:"user"`
	Files     int    `json:"files"`
	Misplaced bool   `json:"misplaced,omitempty"`
}

// MetaUsersResponse is the census reply.
type MetaUsersResponse struct {
	Shard      int            `json:"shard"`
	MapVersion uint64         `json:"map_version"`
	Users      []MetaUserInfo `json:"users"`
}

// MetaExportFile is one file of a user's namespace in transit between
// shards during a reshard: everything needed to reproduce the
// reserve (+ commit, when the upload finished) on the destination.
type MetaExportFile struct {
	Name      string   `json:"name"`
	Size      int64    `json:"size"`
	FileMD5   string   `json:"file_md5"`
	ChunkMD5s []string `json:"chunk_md5s,omitempty"`
	URL       string   `json:"url"`
	Committed bool     `json:"committed"`
}

// MetaExportRequest / MetaExportResponse are the read-only half of a
// user move: dump one user's namespace. Export is served even by a
// shard that no longer owns the user under the current map — that is
// the whole point.
type MetaExportRequest struct {
	User uint64 `json:"user"`
}

type MetaExportResponse struct {
	User  uint64           `json:"user"`
	Files []MetaExportFile `json:"files"`
}

// MetaImportRequest replays an exported namespace onto the shard that
// owns the user under the current map (guarded: an import for a user
// this shard does not own is a wrong_shard).
type MetaImportRequest struct {
	User  uint64           `json:"user"`
	Files []MetaExportFile `json:"files"`
}

type MetaImportResponse struct {
	Imported int `json:"imported"`
}

// MetaEvictRequest drops a user's namespace from a shard that no
// longer owns it (inverse-guarded: evicting a user this shard still
// owns is refused — that would be data loss, not a move).
type MetaEvictRequest struct {
	User uint64 `json:"user"`
}

type MetaEvictResponse struct {
	Evicted int `json:"evicted"`
}

// UsersCensus lists every user namespace this shard holds, flagging
// the ones the current map assigns elsewhere. The rebalancer's
// discovery step.
func (m *Metadata) UsersCensus() MetaUsersResponse {
	m.mu.RLock()
	defer m.mu.RUnlock()
	resp := MetaUsersResponse{Shard: m.shardID, Users: []MetaUserInfo{}}
	if m.shardMap != nil {
		resp.MapVersion = m.shardMap.Version
	}
	for user, ns := range m.users {
		info := MetaUserInfo{User: user, Files: len(ns)}
		if m.shardMap != nil && m.shardMap.ShardFor(user) != m.shardID {
			info.Misplaced = true
		}
		resp.Users = append(resp.Users, info)
	}
	return resp
}

// ExportUser dumps one user's namespace for a shard move. Read-only
// and deliberately unguarded: the source of a move is by definition
// no longer the owner.
func (m *Metadata) ExportUser(user uint64) (MetaExportResponse, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ns, ok := m.users[user]
	if !ok {
		return MetaExportResponse{}, ErrNotFound
	}
	resp := MetaExportResponse{User: user}
	for _, f := range ns {
		ef := MetaExportFile{
			Name: f.Name, Size: f.Size, FileMD5: f.FileMD5.String(), URL: f.URL,
		}
		if cat, committed := m.byMD5[f.FileMD5]; committed && cat == f {
			ef.Committed = true
			ef.ChunkMD5s = sumStrings(f.ChunkMD5s)
		}
		resp.Files = append(resp.Files, ef)
	}
	return resp, nil
}

// ImportUser replays an exported namespace through the WAL path:
// reserve (with the source-minted URL preserved, so client-held URLs
// survive the move) then commit for finished uploads. Guarded — the
// user must hash to this shard under the current map. Idempotent for
// URLs already present with the same content; a URL collision with
// different content aborts the import.
func (m *Metadata) ImportUser(ctx context.Context, req MetaImportRequest) (MetaImportResponse, error) {
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.userShardGuardLocked(req.User); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return MetaImportResponse{}, err
	}
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return MetaImportResponse{}, err
	}
	var lsn int64
	var seq uint64
	var imported int
	for _, f := range req.Files {
		if existing, ok := m.byURL[f.URL]; ok {
			if existing.FileMD5.String() != f.FileMD5 {
				m.mu.Unlock()
				err := fmt.Errorf("storage: meta import: URL %q already holds different content", f.URL)
				app.EndErr(err)
				return MetaImportResponse{}, err
			}
			rec := MetaWALRecord{Op: walOpLink, User: req.User, URL: f.URL}
			l, err := m.logApplyLocked(&rec)
			if err != nil {
				m.mu.Unlock()
				app.EndErr(err)
				return MetaImportResponse{}, err
			}
			lsn, seq = l, rec.Seq
			imported++
			continue
		}
		rec := MetaWALRecord{
			Op: walOpReserve, User: req.User, URL: f.URL,
			Name: f.Name, Size: f.Size, FileMD5: f.FileMD5,
		}
		l, err := m.logApplyLocked(&rec)
		if err != nil {
			m.mu.Unlock()
			app.EndErr(err)
			return MetaImportResponse{}, err
		}
		lsn, seq = l, rec.Seq
		if f.Committed {
			crec := MetaWALRecord{Op: walOpCommit, URL: f.URL, ChunkMD5s: f.ChunkMD5s}
			if l, err = m.logApplyLocked(&crec); err != nil {
				m.mu.Unlock()
				app.EndErr(err)
				return MetaImportResponse{}, err
			}
			lsn, seq = l, crec.Seq
		}
		imported++
	}
	m.mu.Unlock()
	app.End()
	if imported == 0 {
		return MetaImportResponse{}, nil
	}
	return MetaImportResponse{Imported: imported}, m.waitDurable(ctx, lsn, seq)
}

// EvictUser drops a user's namespace after a successful move away.
// Inverse-guarded: a sharded node refuses to evict a user it still
// owns. The unlink records flow through the WAL like any mutation, so
// standbys and replay agree the namespace is gone.
func (m *Metadata) EvictUser(ctx context.Context, user uint64) (MetaEvictResponse, error) {
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if m.shardMap != nil && m.shardMap.ShardFor(user) == m.shardID {
		m.mu.Unlock()
		err := fmt.Errorf("storage: meta evict: shard %d still owns user %d", m.shardID, user)
		app.EndErr(err)
		return MetaEvictResponse{}, err
	}
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return MetaEvictResponse{}, err
	}
	ns, ok := m.users[user]
	if !ok {
		m.mu.Unlock()
		app.End()
		return MetaEvictResponse{}, ErrNotFound
	}
	urls := make([]string, 0, len(ns))
	for url := range ns {
		urls = append(urls, url)
	}
	var lsn int64
	var seq uint64
	for _, url := range urls {
		rec := MetaWALRecord{Op: walOpUnlink, User: user, URL: url}
		l, err := m.logApplyLocked(&rec)
		if err != nil {
			m.mu.Unlock()
			app.EndErr(err)
			return MetaEvictResponse{}, err
		}
		lsn, seq = l, rec.Seq
	}
	m.mu.Unlock()
	app.End()
	if len(urls) == 0 {
		return MetaEvictResponse{}, nil
	}
	return MetaEvictResponse{Evicted: len(urls)}, m.waitDurable(ctx, lsn, seq)
}

// Handler returns the metadata server's HTTP API:
//
//	POST /v1/meta/store-check  StoreCheckRequest -> StoreCheckResponse
//	POST /v1/meta/resolve      ResolveRequest -> ResolveResponse
//	POST /v1/meta/commit       CommitRequest (front-end internal)
//	POST /v1/meta/lookup       LookupRequest -> LookupResponse (front-end internal)
//	POST /v1/meta/wal/pull     MetaPullRequest -> MetaPullResponse (standby internal)
//	GET  /v1/meta/wal/status   MetaWALStatus
//	GET  /v1/meta/shards       cluster.MetaShardMap (the versioned shard map)
//	POST /v1/meta/users        MetaUsersResponse (rebalancer census)
//	POST /v1/meta/export       MetaExportRequest -> MetaExportResponse
//	POST /v1/meta/import       MetaImportRequest -> MetaImportResponse
//	POST /v1/meta/evict        MetaEvictRequest -> MetaEvictResponse
//
// The first six also answer on their unversioned /meta/* aliases
// while -legacyapi is on (stamped with Deprecation/Sunset headers);
// the shard-era endpoints are /v1-only. Every response carries the
// X-MCS-API stamp plus the epoch and shard exchange headers; requests
// advertising v1 receive the typed error envelope. Mutations on a
// standby answer 503 with a retryable envelope so front-ends fail
// over to the primary; operations for a user another shard owns
// answer 421 with a wrong_shard envelope carrying the authoritative
// assignment.
func (m *Metadata) Handler() http.Handler {
	m.mu.RLock()
	legacy := m.legacyAPI
	m.mu.RUnlock()
	mux := http.NewServeMux()
	registerBothGated(mux, legacy, "/meta/store-check", func(w http.ResponseWriter, r *http.Request) {
		var req StoreCheckRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.StoreCheckCtx(r.Context(), req)
		if err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, resp)
	})
	registerBothGated(mux, legacy, "/meta/resolve", func(w http.ResponseWriter, r *http.Request) {
		var req ResolveRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.Resolve(req)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, resp)
	})
	registerBothGated(mux, legacy, "/meta/commit", func(w http.ResponseWriter, r *http.Request) {
		var req CommitRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sums, err := parseSums(req.ChunkMD5s)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		if err := m.CommitCtx(r.Context(), req.Shard, req.URL, sums); err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusNotFound), err)
			return
		}
		writeJSON(w, FileOpResponse{OK: true})
	})
	registerBothGated(mux, legacy, "/meta/lookup", func(w http.ResponseWriter, r *http.Request) {
		var req LookupRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sum, err := ParseSum(req.FileMD5)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		f, err := m.Lookup(req.Shard, sum)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, LookupResponse{
			Name:      f.Name,
			Size:      f.Size,
			FileMD5:   f.FileMD5.String(),
			ChunkMD5s: sumStrings(f.ChunkMD5s),
			URL:       f.URL,
		})
	})
	registerBothGated(mux, legacy, "/meta/wal/pull", func(w http.ResponseWriter, r *http.Request) {
		var req MetaPullRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		// A puller announcing a higher epoch than ours means a newer
		// primary exists: fence (if we think we are a primary) and
		// refuse to serve — our tail may be forked history.
		m.ObserveEpoch(req.Epoch)
		if m.Fenced() {
			err := fmt.Errorf("%w: pull refused, this node's epoch %d was superseded", ErrFenced, m.Epoch())
			writeAPIError(w, r, metaErrStatus(err, http.StatusServiceUnavailable), err)
			return
		}
		writeJSON(w, m.PullWait(r.Context(), req))
	})
	registerBothGated(mux, legacy, "/meta/wal/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeAPIError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method))
			return
		}
		writeJSON(w, m.WALStatus())
	})
	// Shard-era endpoints: /v1-only, no legacy aliases to deprecate.
	mux.HandleFunc("/v1/meta/shards", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeAPIError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method))
			return
		}
		writeJSON(w, m.ShardMapView())
	})
	mux.HandleFunc("/v1/meta/users", func(w http.ResponseWriter, r *http.Request) {
		var req struct{}
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, m.UsersCensus())
	})
	mux.HandleFunc("/v1/meta/export", func(w http.ResponseWriter, r *http.Request) {
		var req MetaExportRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.ExportUser(req.User)
		if err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusNotFound), err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/meta/import", func(w http.ResponseWriter, r *http.Request) {
		var req MetaImportRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.ImportUser(r.Context(), req)
		if err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/meta/evict", func(w http.ResponseWriter, r *http.Request) {
		var req MetaEvictRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.EvictUser(r.Context(), req.User)
		if err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, resp)
	})
	return advertiseV1(m.shardExchange(m.epochExchange(mux)))
}

// shardExchange is the routing middleware, the shard-plane mirror of
// epochExchange: every /meta/* response is stamped with
// "<shard>@<map-version>" naming the shard this node serves. The
// request side carries the shard the client *meant* to reach and the
// map version it routed with; a client that routed with an older map
// is counted (the per-op guards produce the actual wrong_shard
// redirect, with the authoritative assignment attached).
func (m *Metadata) shardExchange(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(MetaShardHeader); v != "" {
			if _, mv, ok := ParseMetaShard(v); ok && m.met != nil && mv != m.MapVersion() {
				m.met.shardSkew.Add(1)
			}
		}
		w.Header().Set(MetaShardHeader, FormatMetaShard(m.ShardID(), m.MapVersion()))
		next.ServeHTTP(w, r)
	})
}

// epochExchange is the fencing middleware: every /meta/* response is
// stamped with this node's current epoch, and every request's echoed
// epoch is folded back in. This is how a deposed primary finds out —
// the first client that talked to the new primary carries the newer
// epoch here, and the write guard starts rejecting.
func (m *Metadata) epochExchange(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(MetaEpochHeader); v != "" {
			if e, err := strconv.ParseUint(v, 10, 64); err == nil {
				m.ObserveEpoch(e)
			}
		}
		w.Header().Set(MetaEpochHeader, strconv.FormatUint(m.Epoch(), 10))
		next.ServeHTTP(w, r)
	})
}

// metaErrStatus maps a metadata mutation error to an HTTP status:
// standby/fencing rejections (and any other unavailability) are 503 so
// the typed envelope marks them retryable; everything else keeps the
// handler's default.
func metaErrStatus(err error, fallback int) int {
	if IsUnavailable(err) || errors.Is(err, ErrFenced) {
		return http.StatusServiceUnavailable
	}
	return fallback
}

// parseSums decodes a list of hex digests.
func parseSums(strs []string) ([]Sum, error) {
	sums := make([]Sum, len(strs))
	for i, s := range strs {
		var err error
		if sums[i], err = ParseSum(s); err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// sumStrings renders digests as hex.
func sumStrings(sums []Sum) []string {
	strs := make([]string, len(sums))
	for i, s := range sums {
		strs[i] = s.String()
	}
	return strs
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeAPIError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeAPIError(w, r, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v after headers/status are already committed.
func writeJSONBody(w http.ResponseWriter, v interface{}) {
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
