package storage

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mcloud/internal/cluster"
	"mcloud/internal/metrics"
	"mcloud/internal/tracing"
)

// FileMeta is the metadata server's record of one stored file version.
type FileMeta struct {
	Name      string
	Size      int64
	FileMD5   Sum
	ChunkMD5s []Sum
	URL       string
}

// MetaService is the slice of the metadata server a storage front-end
// depends on. A front-end colocated with the metadata server uses
// *Metadata directly; a clustered front-end on another node uses
// RemoteMeta, which speaks the same operations over HTTP — this is
// what lets any node accept uploads while the namespace stays single.
type MetaService interface {
	// Commit finalizes a completed upload, making the content
	// available for dedup and retrieval.
	Commit(url string, chunkMD5s []Sum) error
	// Lookup returns the file record for a content hash.
	Lookup(sum Sum) (FileMeta, error)
}

// ctxMetaService is the context-aware superset of MetaService; both
// *Metadata and *RemoteMeta implement it. The context carries the
// caller's trace (WAL spans join it) and cancellation.
type ctxMetaService interface {
	CommitCtx(ctx context.Context, url string, chunkMD5s []Sum) error
	LookupCtx(ctx context.Context, sum Sum) (FileMeta, error)
}

// metaCommit commits via svc, propagating ctx when svc supports it —
// the same downgrade pattern PutCtx uses for chunk stores.
func metaCommit(ctx context.Context, svc MetaService, url string, chunkMD5s []Sum) error {
	if c, ok := svc.(ctxMetaService); ok {
		return c.CommitCtx(ctx, url, chunkMD5s)
	}
	return svc.Commit(url, chunkMD5s)
}

// metaLookup resolves via svc, propagating ctx when svc supports it.
func metaLookup(ctx context.Context, svc MetaService, sum Sum) (FileMeta, error) {
	if c, ok := svc.(ctxMetaService); ok {
		return c.LookupCtx(ctx, sum)
	}
	return svc.Lookup(sum)
}

// Metadata is the metadata service (§2.1): it owns user namespaces,
// performs file-level deduplication, maps URLs to content hashes, and
// assigns storage front-ends. It is safe for concurrent use.
type Metadata struct {
	mu        sync.RWMutex
	byMD5     map[Sum]*FileMeta               // content catalog
	byURL     map[string]*FileMeta            // URL resolution
	users     map[uint64]map[string]*FileMeta // user namespace: URL -> file
	links     map[string]int                  // URL -> number of user namespaces linking it
	frontends []string
	nextFE    int
	urlSeq    int64

	dedupHits int64 // uploads avoided entirely by file-level dedup
	checks    int64

	// Durability + replication state. lastSeq numbers every applied
	// mutation; tail buffers the most recent records so standbys can
	// pull them without reading the log back from disk; wal (nil for a
	// RAM-only server) makes mutations crash-safe. A standby applies
	// only replicated records and rejects direct writes.
	lastSeq uint64
	tail    []MetaWALRecord
	wal     *MetaWAL
	standby bool
	primary string // primary's base URL, for standby error messages

	// Leadership state. epoch is the term this node believes it is in;
	// it rises only through a walOpEpoch fence record (promotion) or by
	// adopting a primary's epoch during standby replication. fenced is
	// set when a higher epoch is observed on the wire while this node
	// is acting as a primary: it has been deposed, and every mutation
	// fails with ErrFenced until it rejoins as a standby. fencedBy
	// remembers the highest remote epoch seen, so a later promotion
	// jumps above it.
	epoch    uint64
	fenced   bool
	fencedBy uint64

	// notify is closed and replaced whenever a record is applied; pull
	// long-polling parks on it so standbys learn about new records in
	// one RTT instead of a poll interval.
	notify chan struct{}

	// puller is the standby pull loop feeding this node, registered by
	// NewMetaStandby. Promotion closes it synchronously before local
	// writes resume, so a promotion can never race an in-flight
	// replicated batch.
	puller interface{ Close() }

	// Semi-sync replication ack state, under its own mutex (it is
	// touched on every pull and every durable write, but never inside
	// the catalog lock's hot paths). replSeq is the highest sequence a
	// standby has confirmed — a pull with After=N acknowledges that the
	// standby has durably applied through N. replSeen is the last pull
	// time; zero means no standby is attached and writes are acked on
	// local fsync alone. replCh is closed and replaced on every ack so
	// waiters wake without polling.
	replMu       sync.Mutex
	replSeq      uint64
	replSeen     time.Time
	replCh       chan struct{}
	syncTimeouts atomic.Int64

	// feHealth is the per-front-end circuit breaker consulted by
	// pickFrontEnd, so clients are not handed a dead front-end URL
	// while it is in cooldown.
	feHealth *cluster.Health

	met *metadataMetrics // nil until Instrument; set before serving
}

// metaSyncTimeout bounds how long an acked write waits for the
// attached standby to confirm replication. On expiry the standby is
// detached (writes proceed on local durability alone — availability
// over sync replication) and the stalled write fails retryably. Kept
// under RemoteMeta's per-request timeout so front-ends see the error,
// not a hang.
const metaSyncTimeout = 3 * time.Second

// metaTailCap bounds the in-memory replication tail. A standby that
// falls further behind than this is reseeded with a full snapshot.
const metaTailCap = 8192

// metadataMetrics holds the pre-resolved latency histograms for the
// metadata operations.
type metadataMetrics struct {
	storeCheck, resolve, commit, lookup *metrics.Histogram
}

// Instrument registers the metadata server's gauges and latency
// histograms. Call it once, before the server starts handling
// requests.
func (m *Metadata) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("mcs_meta_files", "File records (committed or reserved URLs).",
		func() float64 { return float64(m.Stats().Files) })
	reg.GaugeFunc("mcs_meta_users", "User namespaces holding at least one file.",
		func() float64 { return float64(m.Stats().Users) })
	reg.CounterFunc("mcs_meta_checks_total", "Dedup store-check requests handled.",
		func() float64 { return float64(m.Stats().Checks) })
	reg.CounterFunc("mcs_meta_dedup_hits_total", "Uploads avoided entirely by file-level dedup.",
		func() float64 { return float64(m.Stats().DedupHits) })
	help := "Metadata operation latency by operation."
	m.met = &metadataMetrics{
		storeCheck: reg.Histogram("mcs_meta_op_seconds", help, "op", "store_check"),
		resolve:    reg.Histogram("mcs_meta_op_seconds", help, "op", "resolve"),
		commit:     reg.Histogram("mcs_meta_op_seconds", help, "op", "commit"),
		lookup:     reg.Histogram("mcs_meta_op_seconds", help, "op", "lookup"),
	}
	reg.GaugeFunc("mcs_meta_wal_last_seq", "Newest applied metadata mutation sequence.",
		func() float64 { return float64(m.LastSeq()) })
	reg.GaugeFunc("mcs_meta_epoch", "Current metadata leadership epoch (term).",
		func() float64 { return float64(m.Epoch()) })
	reg.GaugeFunc("mcs_meta_fenced", "1 when this node was deposed by a higher epoch and rejects writes.",
		func() float64 {
			if m.Fenced() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("mcs_meta_repl_ack_seq", "Highest mutation sequence the attached standby has acknowledged.",
		func() float64 {
			m.replMu.Lock()
			defer m.replMu.Unlock()
			return float64(m.replSeq)
		})
	reg.CounterFunc("mcs_meta_sync_timeouts_total", "Writes that timed out waiting for standby acknowledgement (standby detached).",
		func() float64 { return float64(m.syncTimeouts.Load()) })
	reg.GaugeFunc("mcs_meta_frontends_down", "Registered front-ends currently inside a breaker down window.",
		func() float64 { return float64(m.feHealth.Down()) })
	if m.wal != nil {
		m.wal.Instrument(reg)
		reg.GaugeFunc("mcs_meta_wal_records", "WAL records not yet covered by a checkpoint.",
			func() float64 { return float64(m.LastSeq() - m.wal.Stats().CheckpointSeq) })
	}
}

// NewMetadata returns a metadata server that will direct clients to
// the given front-end base URLs (round-robin; the measured service
// picks "the closest front-end", which degenerates to round-robin on a
// single site).
func NewMetadata(frontends ...string) *Metadata {
	return &Metadata{
		byMD5:     make(map[Sum]*FileMeta),
		byURL:     make(map[string]*FileMeta),
		users:     make(map[uint64]map[string]*FileMeta),
		links:     make(map[string]int),
		frontends: frontends,
		notify:    make(chan struct{}),
		replCh:    make(chan struct{}),
		feHealth:  cluster.NewHealth(2, 5*time.Second),
	}
}

// AddFrontEnd registers another front-end.
func (m *Metadata) AddFrontEnd(baseURL string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frontends = append(m.frontends, baseURL)
}

// pickFrontEnd returns the next front-end whose breaker is closed,
// advancing the round-robin cursor past ones in cooldown (caller
// holds mu). When every breaker is open the plain rotation wins: a
// maybe-dead assignment beats refusing the upload, and the breaker's
// half-open probe will re-admit recovered nodes.
func (m *Metadata) pickFrontEnd() string {
	n := len(m.frontends)
	if n == 0 {
		return ""
	}
	for i := 0; i < n; i++ {
		fe := m.frontends[m.nextFE%n]
		m.nextFE++
		if m.feHealth.Alive(fe) {
			return fe
		}
	}
	fe := m.frontends[m.nextFE%n]
	m.nextFE++
	return fe
}

// ReportFrontEnd feeds the front-end breaker: ok=false counts toward
// opening it, ok=true closes it. Called by the prober and available to
// any caller that observes a front-end failing.
func (m *Metadata) ReportFrontEnd(baseURL string, ok bool) {
	if ok {
		m.feHealth.ReportSuccess(baseURL)
	} else {
		m.feHealth.ReportFailure(baseURL)
	}
}

// ProbeFrontEnds starts a background prober that marks each registered
// front-end alive or dead by hitting its /v1/cluster/info endpoint.
// Any HTTP response counts as alive — the breaker guards against dead
// processes, not degraded ones. Returns a stop function.
func (m *Metadata) ProbeFrontEnds(httpc *http.Client, interval time.Duration) (stop func()) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			m.mu.RLock()
			fes := append([]string(nil), m.frontends...)
			m.mu.RUnlock()
			for _, fe := range fes {
				req, err := http.NewRequest(http.MethodGet, fe+"/v1/cluster/info", nil)
				if err != nil {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				resp, err := httpc.Do(req.WithContext(ctx))
				if resp != nil {
					resp.Body.Close()
				}
				cancel()
				m.ReportFrontEnd(fe, err == nil)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// StoreCheck implements the dedup handshake: if the content is known,
// it links the file into the user's namespace and reports Duplicate.
// Otherwise it reserves a URL and directs the client to a front-end.
func (m *Metadata) StoreCheck(req StoreCheckRequest) (StoreCheckResponse, error) {
	return m.StoreCheckCtx(context.Background(), req)
}

// StoreCheckCtx is StoreCheck with trace propagation: when a WAL is
// attached, the append and fsync waits show up as spans under the
// caller's trace.
func (m *Metadata) StoreCheckCtx(ctx context.Context, req StoreCheckRequest) (StoreCheckResponse, error) {
	if met := m.met; met != nil {
		defer met.storeCheck.ObserveSince(time.Now())
	}
	sum, err := ParseSum(req.FileMD5)
	if err != nil {
		return StoreCheckResponse{}, err
	}
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return StoreCheckResponse{}, err
	}
	m.checks++
	var rec MetaWALRecord
	var resp StoreCheckResponse
	if f, ok := m.byMD5[sum]; ok {
		m.dedupHits++
		rec = MetaWALRecord{Op: walOpLink, User: req.UserID, URL: f.URL}
		resp = StoreCheckResponse{Duplicate: true, URL: f.URL}
	} else {
		// The record is provisional until Commit; it reserves the URL
		// but enters the dedup catalog only when chunks land. The
		// reserved sequence rides in the record so replay reproduces
		// URL assignment exactly.
		url := fmt.Sprintf("/f/%x/%d", sum[:4], m.urlSeq+1)
		rec = MetaWALRecord{
			Op: walOpReserve, User: req.UserID, URL: url,
			Name: req.Name, Size: req.Size, FileMD5: req.FileMD5,
			URLSeq: m.urlSeq + 1,
		}
		resp = StoreCheckResponse{FrontEnd: m.pickFrontEnd(), URL: url}
	}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	app.EndErr(err)
	if err != nil {
		return StoreCheckResponse{}, err
	}
	return resp, m.waitDurable(ctx, lsn, rec.Seq)
}

// linkLocked adds the file to a user's namespace (caller holds mu).
func (m *Metadata) linkLocked(user uint64, f *FileMeta) {
	ns, ok := m.users[user]
	if !ok {
		ns = make(map[string]*FileMeta)
		m.users[user] = ns
	}
	if _, already := ns[f.URL]; !already {
		m.links[f.URL]++
	}
	ns[f.URL] = f
}

// Unlink removes a file from one user's namespace. When the last
// namespace reference goes away, the catalog entry is dropped and the
// file's chunk digests are returned with lastRef = true so the caller
// can release chunk references (see DeleteFile). Deduplicated content
// linked by other users survives.
func (m *Metadata) Unlink(user uint64, url string) (chunks []Sum, lastRef bool, err error) {
	return m.UnlinkCtx(context.Background(), user, url)
}

// UnlinkCtx is Unlink with trace propagation (see StoreCheckCtx).
func (m *Metadata) UnlinkCtx(ctx context.Context, user uint64, url string) (chunks []Sum, lastRef bool, err error) {
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return nil, false, err
	}
	ns, ok := m.users[user]
	if !ok {
		m.mu.Unlock()
		app.End()
		return nil, false, ErrNotFound
	}
	f, ok := ns[url]
	if !ok {
		m.mu.Unlock()
		app.End()
		return nil, false, ErrNotFound
	}
	chunks = f.ChunkMD5s
	lastRef = m.links[url] <= 1
	rec := MetaWALRecord{Op: walOpUnlink, User: user, URL: url}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	app.EndErr(err)
	if err != nil {
		return nil, false, err
	}
	return chunks, lastRef, m.waitDurable(ctx, lsn, rec.Seq)
}

// Commit finalizes a file upload: the front-end calls it after all
// chunks are stored, making the content available for dedup and
// retrieval.
func (m *Metadata) Commit(url string, chunkMD5s []Sum) error {
	return m.CommitCtx(context.Background(), url, chunkMD5s)
}

// CommitCtx is Commit with trace propagation (see StoreCheckCtx).
func (m *Metadata) CommitCtx(ctx context.Context, url string, chunkMD5s []Sum) error {
	if met := m.met; met != nil {
		defer met.commit.ObserveSince(time.Now())
	}
	app := m.walSpan(ctx, tracing.SpanWALAppend)
	m.mu.Lock()
	if err := m.writeGuardLocked(); err != nil {
		m.mu.Unlock()
		app.EndErr(err)
		return err
	}
	if _, ok := m.byURL[url]; !ok {
		m.mu.Unlock()
		app.End()
		return ErrNotFound
	}
	rec := MetaWALRecord{Op: walOpCommit, URL: url, ChunkMD5s: sumStrings(chunkMD5s)}
	lsn, err := m.logApplyLocked(&rec)
	m.mu.Unlock()
	app.EndErr(err)
	if err != nil {
		return err
	}
	return m.waitDurable(ctx, lsn, rec.Seq)
}

// writeGuardLocked rejects mutations on a node that does not hold the
// write lease: a standby, or a deposed primary that observed a higher
// epoch (caller holds mu). Leadership is the pair (not standby, not
// fenced) — a bare standby bool is not enough, because a SIGKILLed
// primary restarting from its own WAL comes back with standby=false
// and must still be stopped from forking history. Both errors map to
// retryable typed envelopes over /v1, so clients fail over rather
// than surface the rejection.
func (m *Metadata) writeGuardLocked() error {
	if m.fenced {
		return fmt.Errorf("%w: primary at epoch %d deposed by epoch %d", ErrFenced, m.epoch, m.fencedBy)
	}
	if m.standby {
		return fmt.Errorf("%w: metadata standby of %s is read-only", ErrNotPrimary, m.primary)
	}
	return nil
}

// Epoch returns the node's current leadership term.
func (m *Metadata) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// Fenced reports whether this node has been deposed by a higher epoch.
func (m *Metadata) Fenced() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fenced
}

// ObserveEpoch folds a remotely-observed epoch into this node's view.
// A primary that sees a higher epoch than its own has been deposed —
// someone promoted past it while it was gone — and fences itself so no
// further writes land on the forked timeline. A standby just records
// the observation (its writes are rejected anyway, and its pull loop
// adopts the primary's epoch through the replication stream).
func (m *Metadata) ObserveEpoch(remote uint64) {
	if remote == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if remote > m.epoch {
		if !m.standby {
			m.fenced = true
		}
		if remote > m.fencedBy {
			m.fencedBy = remote
		}
	}
}

// logApplyLocked assigns the next sequence number, applies the record
// through the shared mutation path, buffers it for replication, and
// appends it to the WAL (caller holds mu for writing). The returned
// LSN must be passed to waitDurable after the lock is released; until
// then the mutation is applied but not yet acknowledged durable.
func (m *Metadata) logApplyLocked(rec *MetaWALRecord) (int64, error) {
	rec.Seq = m.lastSeq + 1
	rec.Epoch = m.epoch
	if err := m.applyRecordLocked(rec); err != nil {
		return 0, err
	}
	m.lastSeq = rec.Seq
	m.tailAppendLocked(*rec)
	// Wake long-poll pulls parked on the previous notify channel.
	close(m.notify)
	m.notify = make(chan struct{})
	if m.wal == nil {
		return 0, nil
	}
	return m.wal.Append(rec)
}

// applyRecordLocked is the single mutation path: live operations,
// recovery replay, and standby apply all mutate the maps through it,
// so a replayed log always reproduces the live state (caller holds mu
// for writing).
func (m *Metadata) applyRecordLocked(rec *MetaWALRecord) error {
	// The epoch rides on every record; replay and standby apply adopt
	// rises as they happen (the live path is a no-op — logApplyLocked
	// stamped rec.Epoch from m.epoch).
	if rec.Epoch > m.epoch {
		m.epoch = rec.Epoch
	}
	switch rec.Op {
	case walOpEpoch:
		// Leadership fence: no catalog change, the epoch bump above is
		// the whole mutation.
	case walOpReserve:
		sum, err := ParseSum(rec.FileMD5)
		if err != nil {
			return fmt.Errorf("storage: meta apply reserve: %w", err)
		}
		f := &FileMeta{Name: rec.Name, Size: rec.Size, FileMD5: sum, URL: rec.URL}
		m.byURL[rec.URL] = f
		m.linkLocked(rec.User, f)
		if rec.URLSeq > m.urlSeq {
			m.urlSeq = rec.URLSeq
		}
	case walOpLink:
		f, ok := m.byURL[rec.URL]
		if !ok {
			return fmt.Errorf("storage: meta apply link: unknown URL %q", rec.URL)
		}
		m.linkLocked(rec.User, f)
	case walOpCommit:
		f, ok := m.byURL[rec.URL]
		if !ok {
			return fmt.Errorf("storage: meta apply commit: unknown URL %q", rec.URL)
		}
		sums, err := parseSums(rec.ChunkMD5s)
		if err != nil {
			return fmt.Errorf("storage: meta apply commit: %w", err)
		}
		f.ChunkMD5s = sums
		m.byMD5[f.FileMD5] = f
	case walOpUnlink:
		ns, ok := m.users[rec.User]
		if !ok {
			return fmt.Errorf("storage: meta apply unlink: unknown user %d", rec.User)
		}
		f, ok := ns[rec.URL]
		if !ok {
			return fmt.Errorf("storage: meta apply unlink: user %d has no %q", rec.User, rec.URL)
		}
		delete(ns, rec.URL)
		if len(ns) == 0 {
			delete(m.users, rec.User)
		}
		m.links[rec.URL]--
		if m.links[rec.URL] <= 0 {
			delete(m.links, rec.URL)
			delete(m.byURL, rec.URL)
			delete(m.byMD5, f.FileMD5)
		}
	default:
		return fmt.Errorf("storage: meta apply: unknown op %q", rec.Op)
	}
	return nil
}

// tailAppendLocked buffers a record for standby pulls, dropping the
// oldest quarter when full — the tail stays contiguous, and a standby
// that needs older records is reseeded with a snapshot (caller holds
// mu for writing).
func (m *Metadata) tailAppendLocked(rec MetaWALRecord) {
	if len(m.tail) >= metaTailCap {
		n := copy(m.tail, m.tail[metaTailCap/4:])
		m.tail = m.tail[:n]
	}
	m.tail = append(m.tail, rec)
}

// walSpan opens a WAL-append tracing span when durability is on; the
// returned span is nil-safe.
func (m *Metadata) walSpan(ctx context.Context, name string) *tracing.Span {
	if m.wal == nil {
		return nil
	}
	return tracing.ChildFromContext(ctx, tracing.CompMeta, name)
}

// waitDurable blocks until the record behind lsn is fsync-covered,
// tracing the group-commit wait, and then — when a standby is
// attached — until the standby has confirmed replication through seq.
// That second wait is what makes "acked" mean "survives losing the
// primary": a commit answered 200 is already applied and fsynced on
// the standby, so an automatic promotion loses nothing.
func (m *Metadata) waitDurable(ctx context.Context, lsn int64, seq uint64) error {
	if m.wal == nil || lsn == 0 {
		return nil
	}
	fs := tracing.ChildFromContext(ctx, tracing.CompMeta, tracing.SpanWALFsync)
	err := m.wal.WaitDurable(lsn)
	fs.EndErr(err)
	if err != nil {
		return err
	}
	return m.waitReplicated(ctx, seq)
}

// noteStandbyPull records a standby's pull as a replication ack: a
// pull asking for records after N confirms the standby has durably
// applied through N. Also the primary's lease renewal signal.
func (m *Metadata) noteStandbyPull(after uint64) {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	m.replSeen = time.Now()
	if after > m.replSeq {
		m.replSeq = after
	}
	close(m.replCh)
	m.replCh = make(chan struct{})
}

// waitReplicated blocks until the attached standby has acknowledged
// seq, the sync timeout lapses, or ctx is done. On timeout the standby
// is detached — writes fall back to local-durability acks (the
// availability side of semi-sync) — and the stalled write fails with a
// retryable error so the client does not treat it as replicated.
func (m *Metadata) waitReplicated(ctx context.Context, seq uint64) error {
	deadline := time.Now().Add(metaSyncTimeout)
	for {
		m.replMu.Lock()
		if m.replSeen.IsZero() || m.replSeq >= seq {
			m.replMu.Unlock()
			return nil
		}
		ch := m.replCh
		m.replMu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			m.replMu.Lock()
			// Re-check under the lock; the ack may have raced the timer.
			if m.replSeen.IsZero() || m.replSeq >= seq {
				m.replMu.Unlock()
				return nil
			}
			m.replSeen = time.Time{} // detach the stalled standby
			m.replMu.Unlock()
			m.syncTimeouts.Add(1)
			return fmt.Errorf("%w: standby did not acknowledge seq %d within %v", ErrUnavailable, seq, metaSyncTimeout)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
}

// Resolve maps a file URL to its content hash and a front-end, for
// retrievals.
func (m *Metadata) Resolve(req ResolveRequest) (ResolveResponse, error) {
	if met := m.met; met != nil {
		defer met.resolve.ObserveSince(time.Now())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.byURL[req.URL]
	if !ok {
		return ResolveResponse{}, ErrNotFound
	}
	return ResolveResponse{
		FileMD5:  f.FileMD5.String(),
		Size:     f.Size,
		FrontEnd: m.pickFrontEnd(),
	}, nil
}

// LookupCtx is Lookup; the context is accepted for interface symmetry
// (reads don't touch the WAL, so there is nothing to trace here).
func (m *Metadata) LookupCtx(_ context.Context, sum Sum) (FileMeta, error) {
	return m.Lookup(sum)
}

// Lookup returns the file record for a content hash.
func (m *Metadata) Lookup(sum Sum) (FileMeta, error) {
	if met := m.met; met != nil {
		defer met.lookup.ObserveSince(time.Now())
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.byMD5[sum]
	if !ok {
		return FileMeta{}, ErrNotFound
	}
	return *f, nil
}

// LookupURL returns the file record behind a URL even before commit.
func (m *Metadata) LookupURL(url string) (FileMeta, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.byURL[url]
	if !ok {
		return FileMeta{}, ErrNotFound
	}
	return *f, nil
}

// UserFiles lists the URLs in a user's namespace.
func (m *Metadata) UserFiles(user uint64) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var urls []string
	for u := range m.users[user] {
		urls = append(urls, u)
	}
	return urls
}

// MetaStats reports metadata server counters.
type MetaStats struct {
	Files     int
	Users     int
	Checks    int64
	DedupHits int64
}

// Stats returns a snapshot of the counters.
func (m *Metadata) Stats() MetaStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return MetaStats{
		Files:     len(m.byURL),
		Users:     len(m.users),
		Checks:    m.checks,
		DedupHits: m.dedupHits,
	}
}

// CommitRequest is the wire form of MetaService.Commit, used by
// clustered front-ends without a colocated metadata server.
type CommitRequest struct {
	URL       string   `json:"url"`
	ChunkMD5s []string `json:"chunk_md5s"`
}

// LookupRequest is the wire form of MetaService.Lookup.
type LookupRequest struct {
	FileMD5 string `json:"file_md5"`
}

// LookupResponse carries a FileMeta over the wire.
type LookupResponse struct {
	Name      string   `json:"name"`
	Size      int64    `json:"size"`
	FileMD5   string   `json:"file_md5"`
	ChunkMD5s []string `json:"chunk_md5s"`
	URL       string   `json:"url"`
}

// Handler returns the metadata server's HTTP API:
//
//	POST /meta/store-check  StoreCheckRequest -> StoreCheckResponse
//	POST /meta/resolve      ResolveRequest -> ResolveResponse
//	POST /meta/commit       CommitRequest (front-end internal)
//	POST /meta/lookup       LookupRequest -> LookupResponse (front-end internal)
//	POST /meta/wal/pull     MetaPullRequest -> MetaPullResponse (standby internal)
//	GET  /meta/wal/status   MetaWALStatus
//
// Every response carries the X-MCS-API stamp; requests advertising v1
// receive the typed error envelope. Mutations on a standby answer 503
// with a retryable envelope so front-ends fail over to the primary.
func (m *Metadata) Handler() http.Handler {
	mux := http.NewServeMux()
	registerBoth(mux, "/meta/store-check", func(w http.ResponseWriter, r *http.Request) {
		var req StoreCheckRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.StoreCheckCtx(r.Context(), req)
		if err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, resp)
	})
	registerBoth(mux, "/meta/resolve", func(w http.ResponseWriter, r *http.Request) {
		var req ResolveRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.Resolve(req)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, resp)
	})
	registerBoth(mux, "/meta/commit", func(w http.ResponseWriter, r *http.Request) {
		var req CommitRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sums, err := parseSums(req.ChunkMD5s)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		if err := m.CommitCtx(r.Context(), req.URL, sums); err != nil {
			writeAPIError(w, r, metaErrStatus(err, http.StatusNotFound), err)
			return
		}
		writeJSON(w, FileOpResponse{OK: true})
	})
	registerBoth(mux, "/meta/lookup", func(w http.ResponseWriter, r *http.Request) {
		var req LookupRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sum, err := ParseSum(req.FileMD5)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		f, err := m.Lookup(sum)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, LookupResponse{
			Name:      f.Name,
			Size:      f.Size,
			FileMD5:   f.FileMD5.String(),
			ChunkMD5s: sumStrings(f.ChunkMD5s),
			URL:       f.URL,
		})
	})
	registerBoth(mux, "/meta/wal/pull", func(w http.ResponseWriter, r *http.Request) {
		var req MetaPullRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		// A puller announcing a higher epoch than ours means a newer
		// primary exists: fence (if we think we are a primary) and
		// refuse to serve — our tail may be forked history.
		m.ObserveEpoch(req.Epoch)
		if m.Fenced() {
			err := fmt.Errorf("%w: pull refused, this node's epoch %d was superseded", ErrFenced, m.Epoch())
			writeAPIError(w, r, metaErrStatus(err, http.StatusServiceUnavailable), err)
			return
		}
		writeJSON(w, m.PullWait(r.Context(), req))
	})
	registerBoth(mux, "/meta/wal/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeAPIError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method))
			return
		}
		writeJSON(w, m.WALStatus())
	})
	return advertiseV1(m.epochExchange(mux))
}

// epochExchange is the fencing middleware: every /meta/* response is
// stamped with this node's current epoch, and every request's echoed
// epoch is folded back in. This is how a deposed primary finds out —
// the first client that talked to the new primary carries the newer
// epoch here, and the write guard starts rejecting.
func (m *Metadata) epochExchange(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(MetaEpochHeader); v != "" {
			if e, err := strconv.ParseUint(v, 10, 64); err == nil {
				m.ObserveEpoch(e)
			}
		}
		w.Header().Set(MetaEpochHeader, strconv.FormatUint(m.Epoch(), 10))
		next.ServeHTTP(w, r)
	})
}

// metaErrStatus maps a metadata mutation error to an HTTP status:
// standby/fencing rejections (and any other unavailability) are 503 so
// the typed envelope marks them retryable; everything else keeps the
// handler's default.
func metaErrStatus(err error, fallback int) int {
	if IsUnavailable(err) || errors.Is(err, ErrFenced) {
		return http.StatusServiceUnavailable
	}
	return fallback
}

// parseSums decodes a list of hex digests.
func parseSums(strs []string) ([]Sum, error) {
	sums := make([]Sum, len(strs))
	for i, s := range strs {
		var err error
		if sums[i], err = ParseSum(s); err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// sumStrings renders digests as hex.
func sumStrings(sums []Sum) []string {
	strs := make([]string, len(sums))
	for i, s := range sums {
		strs[i] = s.String()
	}
	return strs
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeAPIError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeAPIError(w, r, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v after headers/status are already committed.
func writeJSONBody(w http.ResponseWriter, v interface{}) {
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
