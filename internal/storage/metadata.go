package storage

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mcloud/internal/metrics"
)

// FileMeta is the metadata server's record of one stored file version.
type FileMeta struct {
	Name      string
	Size      int64
	FileMD5   Sum
	ChunkMD5s []Sum
	URL       string
}

// MetaService is the slice of the metadata server a storage front-end
// depends on. A front-end colocated with the metadata server uses
// *Metadata directly; a clustered front-end on another node uses
// RemoteMeta, which speaks the same operations over HTTP — this is
// what lets any node accept uploads while the namespace stays single.
type MetaService interface {
	// Commit finalizes a completed upload, making the content
	// available for dedup and retrieval.
	Commit(url string, chunkMD5s []Sum) error
	// Lookup returns the file record for a content hash.
	Lookup(sum Sum) (FileMeta, error)
}

// Metadata is the metadata service (§2.1): it owns user namespaces,
// performs file-level deduplication, maps URLs to content hashes, and
// assigns storage front-ends. It is safe for concurrent use.
type Metadata struct {
	mu        sync.RWMutex
	byMD5     map[Sum]*FileMeta               // content catalog
	byURL     map[string]*FileMeta            // URL resolution
	users     map[uint64]map[string]*FileMeta // user namespace: URL -> file
	links     map[string]int                  // URL -> number of user namespaces linking it
	frontends []string
	nextFE    int
	urlSeq    int64

	dedupHits int64 // uploads avoided entirely by file-level dedup
	checks    int64

	met *metadataMetrics // nil until Instrument; set before serving
}

// metadataMetrics holds the pre-resolved latency histograms for the
// metadata operations.
type metadataMetrics struct {
	storeCheck, resolve, commit, lookup *metrics.Histogram
}

// Instrument registers the metadata server's gauges and latency
// histograms. Call it once, before the server starts handling
// requests.
func (m *Metadata) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("mcs_meta_files", "File records (committed or reserved URLs).",
		func() float64 { return float64(m.Stats().Files) })
	reg.GaugeFunc("mcs_meta_users", "User namespaces holding at least one file.",
		func() float64 { return float64(m.Stats().Users) })
	reg.CounterFunc("mcs_meta_checks_total", "Dedup store-check requests handled.",
		func() float64 { return float64(m.Stats().Checks) })
	reg.CounterFunc("mcs_meta_dedup_hits_total", "Uploads avoided entirely by file-level dedup.",
		func() float64 { return float64(m.Stats().DedupHits) })
	help := "Metadata operation latency by operation."
	m.met = &metadataMetrics{
		storeCheck: reg.Histogram("mcs_meta_op_seconds", help, "op", "store_check"),
		resolve:    reg.Histogram("mcs_meta_op_seconds", help, "op", "resolve"),
		commit:     reg.Histogram("mcs_meta_op_seconds", help, "op", "commit"),
		lookup:     reg.Histogram("mcs_meta_op_seconds", help, "op", "lookup"),
	}
}

// NewMetadata returns a metadata server that will direct clients to
// the given front-end base URLs (round-robin; the measured service
// picks "the closest front-end", which degenerates to round-robin on a
// single site).
func NewMetadata(frontends ...string) *Metadata {
	return &Metadata{
		byMD5:     make(map[Sum]*FileMeta),
		byURL:     make(map[string]*FileMeta),
		users:     make(map[uint64]map[string]*FileMeta),
		links:     make(map[string]int),
		frontends: frontends,
	}
}

// AddFrontEnd registers another front-end.
func (m *Metadata) AddFrontEnd(baseURL string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frontends = append(m.frontends, baseURL)
}

// pickFrontEnd returns the next front-end (caller holds mu).
func (m *Metadata) pickFrontEnd() string {
	if len(m.frontends) == 0 {
		return ""
	}
	fe := m.frontends[m.nextFE%len(m.frontends)]
	m.nextFE++
	return fe
}

// StoreCheck implements the dedup handshake: if the content is known,
// it links the file into the user's namespace and reports Duplicate.
// Otherwise it reserves a URL and directs the client to a front-end.
func (m *Metadata) StoreCheck(req StoreCheckRequest) (StoreCheckResponse, error) {
	if met := m.met; met != nil {
		defer met.storeCheck.ObserveSince(time.Now())
	}
	sum, err := ParseSum(req.FileMD5)
	if err != nil {
		return StoreCheckResponse{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checks++
	if f, ok := m.byMD5[sum]; ok {
		m.dedupHits++
		m.linkLocked(req.UserID, f)
		return StoreCheckResponse{Duplicate: true, URL: f.URL}, nil
	}
	m.urlSeq++
	url := fmt.Sprintf("/f/%x/%d", sum[:4], m.urlSeq)
	f := &FileMeta{Name: req.Name, Size: req.Size, FileMD5: sum, URL: url}
	// The record is provisional until Commit; store it under URL so
	// the URL is reserved, but not under MD5 until chunks land.
	m.byURL[url] = f
	m.linkLocked(req.UserID, f)
	return StoreCheckResponse{FrontEnd: m.pickFrontEnd(), URL: url}, nil
}

// linkLocked adds the file to a user's namespace (caller holds mu).
func (m *Metadata) linkLocked(user uint64, f *FileMeta) {
	ns, ok := m.users[user]
	if !ok {
		ns = make(map[string]*FileMeta)
		m.users[user] = ns
	}
	if _, already := ns[f.URL]; !already {
		m.links[f.URL]++
	}
	ns[f.URL] = f
}

// Unlink removes a file from one user's namespace. When the last
// namespace reference goes away, the catalog entry is dropped and the
// file's chunk digests are returned with lastRef = true so the caller
// can release chunk references (see DeleteFile). Deduplicated content
// linked by other users survives.
func (m *Metadata) Unlink(user uint64, url string) (chunks []Sum, lastRef bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.users[user]
	if !ok {
		return nil, false, ErrNotFound
	}
	f, ok := ns[url]
	if !ok {
		return nil, false, ErrNotFound
	}
	delete(ns, url)
	if len(ns) == 0 {
		delete(m.users, user)
	}
	m.links[url]--
	if m.links[url] > 0 {
		return f.ChunkMD5s, false, nil
	}
	delete(m.links, url)
	delete(m.byURL, url)
	delete(m.byMD5, f.FileMD5)
	return f.ChunkMD5s, true, nil
}

// Commit finalizes a file upload: the front-end calls it after all
// chunks are stored, making the content available for dedup and
// retrieval.
func (m *Metadata) Commit(url string, chunkMD5s []Sum) error {
	if met := m.met; met != nil {
		defer met.commit.ObserveSince(time.Now())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.byURL[url]
	if !ok {
		return ErrNotFound
	}
	f.ChunkMD5s = chunkMD5s
	m.byMD5[f.FileMD5] = f
	return nil
}

// Resolve maps a file URL to its content hash and a front-end, for
// retrievals.
func (m *Metadata) Resolve(req ResolveRequest) (ResolveResponse, error) {
	if met := m.met; met != nil {
		defer met.resolve.ObserveSince(time.Now())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.byURL[req.URL]
	if !ok {
		return ResolveResponse{}, ErrNotFound
	}
	return ResolveResponse{
		FileMD5:  f.FileMD5.String(),
		Size:     f.Size,
		FrontEnd: m.pickFrontEnd(),
	}, nil
}

// Lookup returns the file record for a content hash.
func (m *Metadata) Lookup(sum Sum) (FileMeta, error) {
	if met := m.met; met != nil {
		defer met.lookup.ObserveSince(time.Now())
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.byMD5[sum]
	if !ok {
		return FileMeta{}, ErrNotFound
	}
	return *f, nil
}

// LookupURL returns the file record behind a URL even before commit.
func (m *Metadata) LookupURL(url string) (FileMeta, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.byURL[url]
	if !ok {
		return FileMeta{}, ErrNotFound
	}
	return *f, nil
}

// UserFiles lists the URLs in a user's namespace.
func (m *Metadata) UserFiles(user uint64) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var urls []string
	for u := range m.users[user] {
		urls = append(urls, u)
	}
	return urls
}

// MetaStats reports metadata server counters.
type MetaStats struct {
	Files     int
	Users     int
	Checks    int64
	DedupHits int64
}

// Stats returns a snapshot of the counters.
func (m *Metadata) Stats() MetaStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return MetaStats{
		Files:     len(m.byURL),
		Users:     len(m.users),
		Checks:    m.checks,
		DedupHits: m.dedupHits,
	}
}

// CommitRequest is the wire form of MetaService.Commit, used by
// clustered front-ends without a colocated metadata server.
type CommitRequest struct {
	URL       string   `json:"url"`
	ChunkMD5s []string `json:"chunk_md5s"`
}

// LookupRequest is the wire form of MetaService.Lookup.
type LookupRequest struct {
	FileMD5 string `json:"file_md5"`
}

// LookupResponse carries a FileMeta over the wire.
type LookupResponse struct {
	Name      string   `json:"name"`
	Size      int64    `json:"size"`
	FileMD5   string   `json:"file_md5"`
	ChunkMD5s []string `json:"chunk_md5s"`
	URL       string   `json:"url"`
}

// Handler returns the metadata server's HTTP API:
//
//	POST /meta/store-check  StoreCheckRequest -> StoreCheckResponse
//	POST /meta/resolve      ResolveRequest -> ResolveResponse
//	POST /meta/commit       CommitRequest (front-end internal)
//	POST /meta/lookup       LookupRequest -> LookupResponse (front-end internal)
//
// Every response carries the X-MCS-API stamp; requests advertising v1
// receive the typed error envelope.
func (m *Metadata) Handler() http.Handler {
	mux := http.NewServeMux()
	registerBoth(mux, "/meta/store-check", func(w http.ResponseWriter, r *http.Request) {
		var req StoreCheckRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.StoreCheck(req)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, resp)
	})
	registerBoth(mux, "/meta/resolve", func(w http.ResponseWriter, r *http.Request) {
		var req ResolveRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := m.Resolve(req)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, resp)
	})
	registerBoth(mux, "/meta/commit", func(w http.ResponseWriter, r *http.Request) {
		var req CommitRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sums, err := parseSums(req.ChunkMD5s)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		if err := m.Commit(req.URL, sums); err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, FileOpResponse{OK: true})
	})
	registerBoth(mux, "/meta/lookup", func(w http.ResponseWriter, r *http.Request) {
		var req LookupRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sum, err := ParseSum(req.FileMD5)
		if err != nil {
			writeAPIError(w, r, http.StatusBadRequest, err)
			return
		}
		f, err := m.Lookup(sum)
		if err != nil {
			writeAPIError(w, r, http.StatusNotFound, err)
			return
		}
		writeJSON(w, LookupResponse{
			Name:      f.Name,
			Size:      f.Size,
			FileMD5:   f.FileMD5.String(),
			ChunkMD5s: sumStrings(f.ChunkMD5s),
			URL:       f.URL,
		})
	})
	return advertiseV1(mux)
}

// parseSums decodes a list of hex digests.
func parseSums(strs []string) ([]Sum, error) {
	sums := make([]Sum, len(strs))
	for i, s := range strs {
		var err error
		if sums[i], err = ParseSum(s); err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// sumStrings renders digests as hex.
func sumStrings(sums []Sum) []string {
	strs := make([]string, len(sums))
	for i, s := range sums {
		strs[i] = s.String()
	}
	return strs
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeAPIError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("storage: method %s not allowed", r.Method))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeAPIError(w, r, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v after headers/status are already committed.
func writeJSONBody(w http.ResponseWriter, v interface{}) {
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
