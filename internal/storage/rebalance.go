package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"mcloud/internal/cluster"
)

// Rebalancer walks a cluster and restores the invariant the ring
// declares: every chunk lives on exactly its N owners. It is the
// offline counterpart of the ReplicatedStore's online repair queue —
// the queue heals failures the writing node observed, the rebalancer
// heals what nobody observed (a node restored from an old disk, a
// membership change, a crash that lost the queue).
//
// The pass is idempotent and safe to run against a live cluster: all
// traffic carries the replica header, so reads and writes act on each
// node's local store and never re-enter the fan-out path.
type Rebalancer struct {
	// Seed is any live node's base URL; membership and the replication
	// factor are discovered from its /v1/cluster/info.
	Seed string
	// HTTP is the transport; nil uses the shared replica client.
	HTTP *http.Client
	// Prune deletes copies from nodes the ring does not assign — only
	// after a batched stat confirms every owner holds the chunk.
	Prune bool
	// DryRun reports what would change without moving bytes.
	DryRun bool
	// Logf, when set, receives per-action progress lines.
	Logf func(format string, args ...interface{})

	// binNodes remembers which nodes advertised the binary chunk
	// dialect during the census, so the re-streaming pass moves bytes
	// over mcsbin/1 frames where both ends speak it.
	binNodes map[string]bool
}

// noteBin records node's advertised dialect set from a response.
func (rb *Rebalancer) noteBin(node string, h http.Header) {
	if rb.binNodes == nil {
		rb.binNodes = make(map[string]bool)
	}
	rb.binNodes[node] = binAdvertised(h)
}

func (rb *Rebalancer) binNode(node string) bool { return rb.binNodes[node] }

// RebalanceReport summarizes one pass.
type RebalanceReport struct {
	Nodes      int `json:"nodes"`
	Replicas   int `json:"replicas"`
	Chunks     int `json:"chunks"`      // distinct chunks seen
	Copies     int `json:"copies"`      // replica copies seen
	Replicated int `json:"replicated"`  // missing owner copies created
	Pruned     int `json:"pruned"`      // misplaced copies removed
	Misplaced  int `json:"misplaced"`   // copies on non-owner nodes
	Errors     int `json:"errors"`      // failed transfers (chunk left as-is)
	Unlistable int `json:"unlistable"`  // nodes whose store cannot enumerate
}

func (rb *Rebalancer) logf(format string, args ...interface{}) {
	if rb.Logf != nil {
		rb.Logf(format, args...)
	}
}

func (rb *Rebalancer) client() *http.Client {
	if rb.HTTP != nil {
		return rb.HTTP
	}
	return replicaHTTPClient
}

// Run executes one rebalance pass.
func (rb *Rebalancer) Run() (RebalanceReport, error) {
	var rep RebalanceReport
	info, err := rb.clusterInfo(rb.Seed)
	if err != nil {
		return rep, fmt.Errorf("storage: rebalance: cluster info from %s: %w", rb.Seed, err)
	}
	if len(info.Peers) < 2 {
		return rep, fmt.Errorf("storage: rebalance: %s is not clustered", rb.Seed)
	}
	ring, err := cluster.NewRing(info.Peers, 0)
	if err != nil {
		return rep, err
	}
	rep.Nodes, rep.Replicas = len(info.Peers), info.Replicas

	// 1. Census: which node holds which chunks.
	holders := make(map[Sum]map[string]bool)
	for _, node := range info.Peers {
		chunks, err := rb.listChunks(node)
		if err != nil {
			rb.logf("rebalance: list %s: %v", node, err)
			rep.Unlistable++
			continue
		}
		for _, ci := range chunks {
			sum, err := ParseSum(ci.MD5)
			if err != nil {
				continue
			}
			if holders[sum] == nil {
				holders[sum] = make(map[string]bool, info.Replicas)
			}
			holders[sum][node] = true
			rep.Copies++
		}
	}
	rep.Chunks = len(holders)
	// A node that cannot enumerate (no Ranger) still receives copies;
	// it just contributes nothing to the census. Refuse to prune in
	// that case — a "misplaced" copy might be the only one we can see.
	prune := rb.Prune && rep.Unlistable == 0

	// Deterministic order keeps reruns and logs stable.
	sums := make([]Sum, 0, len(holders))
	for sum := range holders {
		sums = append(sums, sum)
	}
	sort.Slice(sums, func(i, j int) bool {
		return bytes.Compare(sums[i][:], sums[j][:]) < 0
	})

	// 2. Restore placement: stream each chunk to owners missing it.
	var pruneCands []pruneCand
	for _, sum := range sums {
		have := holders[sum]
		owners := ring.Owners(cluster.Key(sum), info.Replicas)
		ownerSet := make(map[string]bool, len(owners))
		for _, o := range owners {
			ownerSet[o] = true
		}
		var data []byte
		ok := true
		for _, o := range owners {
			if have[o] {
				continue
			}
			if rb.DryRun {
				rb.logf("rebalance: would copy %s -> %s", sum, o)
				rep.Replicated++
				continue
			}
			if data == nil {
				data = rb.fetchFrom(have, sum)
				if data == nil {
					rb.logf("rebalance: no live copy of %s", sum)
					rep.Errors++
					ok = false
					break
				}
			}
			if err := rb.putTo(o, sum, data); err != nil {
				rb.logf("rebalance: copy %s -> %s: %v", sum, o, err)
				rep.Errors++
				ok = false
				continue
			}
			have[o] = true
			rep.Replicated++
			rb.logf("rebalance: copied %s -> %s", sum, o)
		}
		var misplaced []string
		for node := range have {
			if !ownerSet[node] {
				misplaced = append(misplaced, node)
			}
		}
		sort.Strings(misplaced)
		rep.Misplaced += len(misplaced)
		if prune && ok && len(misplaced) > 0 {
			pruneCands = append(pruneCands, pruneCand{sum, misplaced})
		}
	}

	// 3. Prune: before deleting any misplaced copy, confirm with one
	// batched stat per owner that the owners really hold their chunks
	// (the census could be stale against a live cluster).
	if len(pruneCands) > 0 {
		confirmed := rb.confirmOwners(ring, info.Replicas, pruneCands)
		for _, pc := range pruneCands {
			if !confirmed[pc.sum] {
				rb.logf("rebalance: skip prune of %s: owners unconfirmed", pc.sum)
				continue
			}
			for _, node := range pc.from {
				if rb.DryRun {
					rb.logf("rebalance: would prune %s from %s", pc.sum, node)
					rep.Pruned++
					continue
				}
				if err := rb.deleteFrom(node, pc.sum); err != nil {
					rb.logf("rebalance: prune %s from %s: %v", pc.sum, node, err)
					rep.Errors++
					continue
				}
				rep.Pruned++
				rb.logf("rebalance: pruned %s from %s", pc.sum, node)
			}
		}
	}
	return rep, nil
}

// pruneCand is a chunk with misplaced copies awaiting owner
// confirmation before deletion.
type pruneCand struct {
	sum  Sum
	from []string
}

// confirmOwners issues one batched /v1/op/stat per owner covering every
// prune candidate it owns, and reports which chunks have all owners
// confirmed present.
func (rb *Rebalancer) confirmOwners(ring *cluster.Ring, n int, cands []pruneCand) map[Sum]bool {
	byOwner := make(map[string][]Sum)
	for _, pc := range cands {
		for _, o := range ring.Owners(cluster.Key(pc.sum), n) {
			byOwner[o] = append(byOwner[o], pc.sum)
		}
	}
	confirmed := make(map[Sum]bool, len(cands))
	for _, pc := range cands {
		confirmed[pc.sum] = true
	}
	for owner, sums := range byOwner {
		missing, err := rb.statNode(owner, sums)
		if err != nil {
			// Can't verify this owner: fail safe, confirm none of its chunks.
			for _, s := range sums {
				confirmed[s] = false
			}
			continue
		}
		for _, m := range missing {
			if sum, err := ParseSum(m); err == nil {
				confirmed[sum] = false
			}
		}
	}
	return confirmed
}

// --- wire calls (replica dialect: local-store semantics) ---------------

func (rb *Rebalancer) replicaReq(method, node, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, node+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(APIHeader, APIV1)
	req.Header.Set(ReplicaHeader, "1")
	return req, nil
}

func (rb *Rebalancer) clusterInfo(node string) (*ClusterInfo, error) {
	req, err := rb.replicaReq(http.MethodGet, node, "/v1/cluster/info", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rb.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb.noteBin(node, resp.Header)
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var info ClusterInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (rb *Rebalancer) listChunks(node string) ([]ChunkInfo, error) {
	req, err := rb.replicaReq(http.MethodGet, node, "/v1/cluster/chunks", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rb.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb.noteBin(node, resp.Header)
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var chunks []ChunkInfo
	if err := json.NewDecoder(resp.Body).Decode(&chunks); err != nil {
		return nil, err
	}
	return chunks, nil
}

// fetchFrom reads the chunk from any census holder, verifying the
// digest; nil when no holder answers with intact bytes.
func (rb *Rebalancer) fetchFrom(have map[string]bool, sum Sum) []byte {
	nodes := make([]string, 0, len(have))
	for n := range have {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		if rb.binNode(node) {
			req, err := binGetOneReq(node, sum)
			if err != nil {
				continue
			}
			req.Header.Set(APIHeader, APIV1)
			req.Header.Set(ReplicaHeader, "1")
			resp, err := rb.client().Do(req)
			if err != nil {
				continue
			}
			data, err := binReadOneFrame(resp, sum)
			resp.Body.Close()
			if err != nil {
				rb.logf("rebalance: binary fetch from %s failed for %s: %v", node, sum, err)
				continue
			}
			return data
		}
		req, err := rb.replicaReq(http.MethodGet, node, "/v1/chunk/"+sum.String(), nil)
		if err != nil {
			continue
		}
		resp, err := rb.client().Do(req)
		if err != nil {
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, ChunkSize+1))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if len(data) > ChunkSize || SumBytes(data) != sum {
			rb.logf("rebalance: %s returned corrupt bytes for %s", node, sum)
			continue
		}
		return data
	}
	return nil
}

func (rb *Rebalancer) putTo(node string, sum Sum, data []byte) error {
	var req *http.Request
	var err error
	if rb.binNode(node) {
		req, err = binPutOneReq(node, sum, data)
		if err == nil {
			req.Header.Set(APIHeader, APIV1)
			req.Header.Set(ReplicaHeader, "1")
		}
	} else {
		req, err = rb.replicaReq(http.MethodPut, node, "/v1/chunk/"+sum.String(), bytes.NewReader(data))
	}
	if err != nil {
		return err
	}
	resp, err := rb.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func (rb *Rebalancer) deleteFrom(node string, sum Sum) error {
	req, err := rb.replicaReq(http.MethodDelete, node, "/v1/chunk/"+sum.String(), nil)
	if err != nil {
		return err
	}
	resp, err := rb.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// statNode asks one node which of the given chunks it is missing.
func (rb *Rebalancer) statNode(node string, sums []Sum) ([]string, error) {
	body, err := json.Marshal(StatRequest{ChunkMD5s: sumStrings(sums)})
	if err != nil {
		return nil, err
	}
	req, err := rb.replicaReq(http.MethodPost, node, "/v1/op/stat", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rb.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var sr StatResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return sr.MissingMD5s, nil
}
