package metrics

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Health tracks process liveness and readiness for the ops endpoints.
// Liveness is implicit (the process answers); readiness is flipped by
// the server around startup and drain so load balancers stop sending
// traffic before in-flight requests are drained.
type Health struct {
	ready atomic.Bool
}

// SetReady marks the service ready (true) or draining (false).
func (h *Health) SetReady(v bool) { h.ready.Store(v) }

// Ready reports the current readiness.
func (h *Health) Ready() bool { return h.ready.Load() }

// OpsMux returns the operational HTTP surface:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 while the process is up
//	/readyz        200 when health is ready, 503 while draining
//	/debug/vars    expvar JSON (memstats, cmdline, published registries)
//	/debug/pprof/  the standard runtime profiles
//
// health may be nil, in which case /readyz always reports ready.
func OpsMux(reg *Registry, health *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil && !health.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var (
	publishMu   sync.Mutex
	publishSeen = make(map[string]bool)
)

// PublishExpvar exposes the registry's current values under the given
// expvar name at /debug/vars as a flat {series: value} object.
// Publishing the same name twice is a no-op (expvar itself panics on
// duplicates).
func PublishExpvar(name string, reg *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishSeen[name] {
		return
	}
	publishSeen[name] = true
	expvar.Publish(name, expvar.Func(func() interface{} {
		out := make(map[string]float64)
		put := func(k string, v float64) {
			// NaN (e.g. the quantile of an empty histogram) is not
			// representable in JSON; drop the entry instead of
			// breaking the whole /debug/vars document.
			if v == v {
				out[k] = v
			}
		}
		reg.mu.Lock()
		defer reg.mu.Unlock()
		for _, fam := range reg.fams {
			for _, s := range fam.series {
				switch fam.kind {
				case kindCounter:
					put(Key(fam.name, s.labels...), float64(s.c.Value()))
				case kindGauge:
					put(Key(fam.name, s.labels...), float64(s.g.Value()))
				case kindCounterFunc, kindGaugeFunc:
					if s.f != nil {
						put(Key(fam.name, s.labels...), s.f())
					}
				case kindHistogram:
					put(Key(fam.name+"_count", s.labels...), float64(s.h.Count()))
					put(Key(fam.name+"_sum", s.labels...), s.h.Sum())
					put(Key(fam.name+"_p99", s.labels...), s.h.Quantile(0.99))
				}
			}
		}
		return out
	}))
}
