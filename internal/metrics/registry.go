package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// kind discriminates the metric families a Registry can hold.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// promType maps a kind to its Prometheus TYPE keyword. Histograms are
// exported as summaries: precomputed quantiles plus _sum and _count.
func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "summary"
	}
}

type series struct {
	labels []string // alternating key, value, as registered
	key    string   // canonical sorted label rendering
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families in registration order. All methods
// are safe for concurrent use; the intended pattern is to register
// everything at startup and keep the returned handles, so the serving
// hot path never touches the registry's lock.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter returns the counter for name and the given alternating
// label key/value pairs, creating it on first use. Registering the
// same name with a different metric kind panics (a programming
// error, caught at startup).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.series(name, help, kindCounter, labels).c
}

// Gauge returns the gauge for name and labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.series(name, help, kindGauge, labels).g
}

// Histogram returns the histogram for name and labels, creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.series(name, help, kindHistogram, labels).h
}

// CounterFunc registers a monotonic value sampled by calling f at
// exposition time — for components that already keep their own
// counters under a lock. f must not call back into the registry.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...string) {
	s := r.series(name, help, kindCounterFunc, labels)
	if s.f == nil {
		s.f = f
	}
}

// GaugeFunc registers a level sampled by calling f at exposition
// time. f must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...string) {
	s := r.series(name, help, kindGaugeFunc, labels)
	if s.f == nil {
		s.f = f
	}
}

func (r *Registry) series(name, help string, k kind, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.byName[name] = fam
		r.fams = append(r.fams, fam)
	} else if fam.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, fam.kind.promType(), k.promType()))
	}
	key := labelKey(labels)
	if s := fam.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: append([]string(nil), labels...), key: key}
	switch k {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{}
	}
	fam.byKey[key] = s
	fam.series = append(fam.series, s)
	return s
}

// labelKey renders alternating key/value pairs as the canonical
// sorted `k="v",...` string used to identify a series.
func labelKey(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// Key renders the canonical series identifier used both in the text
// exposition and as the map key returned by ParseText: the metric
// name followed by its sorted label set.
func Key(name string, kv ...string) string {
	lk := labelKey(kv)
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
