package metrics

import (
	"expvar"
	"runtime"
	"runtime/debug"
	"sync"
)

// PublishBuildInfo exposes the process's build identity under the
// "mcs_build" expvar key on /debug/vars: module path and version, the
// VCS revision when the binary was built from a checkout, the Go
// toolchain version, GOMAXPROCS, and the node name this process
// serves as. Before this existed there was no way to tell which build
// a cluster node was running.
//
// Safe to call more than once (the later node name wins); the expvar
// key is registered exactly once per process.
func PublishBuildInfo(node string) {
	buildInfoMu.Lock()
	buildInfoNode = node
	buildInfoMu.Unlock()
	buildInfoOnce.Do(func() {
		expvar.Publish("mcs_build", expvar.Func(func() interface{} {
			buildInfoMu.Lock()
			n := buildInfoNode
			buildInfoMu.Unlock()
			info := map[string]interface{}{
				"go_version": runtime.Version(),
				"gomaxprocs": runtime.GOMAXPROCS(0),
				"node":       n,
			}
			if bi, ok := debug.ReadBuildInfo(); ok {
				info["module"] = bi.Main.Path
				if bi.Main.Version != "" {
					info["module_version"] = bi.Main.Version
				}
				for _, s := range bi.Settings {
					switch s.Key {
					case "vcs.revision":
						info["vcs_revision"] = s.Value
					case "vcs.time":
						info["vcs_time"] = s.Value
					case "vcs.modified":
						info["vcs_modified"] = s.Value
					}
				}
			}
			return info
		}))
	})
}

var (
	buildInfoOnce sync.Once
	buildInfoMu   sync.Mutex
	buildInfoNode string
)
