// Package metrics provides allocation-free instrumentation primitives
// for the storage service: atomic counters and gauges, log-bucketed
// latency histograms with quantile extraction, and a Registry that
// renders everything in the Prometheus text exposition format. There
// is no global state — every component receives the Registry it should
// register into, so tests and multi-instance deployments never share
// series by accident.
//
// Hot-path cost is a single atomic add for counters/gauges and two
// atomic adds plus a floating-point CAS for histograms; nothing
// allocates after registration.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is not
// usable on its own — obtain counters from a Registry so they are
// exported.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket geometry: values from 1 µs upward in buckets that
// grow by 2^(1/8) ≈ 9.05 % per step. With geometric-midpoint
// interpolation the worst-case quantile error is about half a bucket
// width (~4.4 %), comfortably inside the ±10 % the log-replay
// cross-check demands, while a histogram stays a fixed ~2.2 KB.
const (
	histMin  = 1e-6 // lower bound of bucket 1 (seconds)
	histBPO  = 8    // buckets per octave (factor-of-2 range)
	histSize = 280  // covers up to histMin * 2^(280/8) ≈ 34 000 s
)

// Histogram is a fixed-size, log-bucketed distribution of
// non-negative float64 observations (typically seconds). It is safe
// for concurrent use and never allocates on Observe.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	maxIdx  atomic.Int64 // highest bucket index observed so far
	buckets [histSize]atomic.Int64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if !(v > histMin) { // also catches NaN and negatives
		return 0
	}
	i := int(math.Log2(v/histMin) * histBPO)
	if i >= histSize {
		return histSize - 1
	}
	return i
}

// bucketMid returns the representative value of a bucket: the
// geometric mean of its bounds (the lower bound for bucket 0, which
// holds everything at or below histMin).
func bucketMid(i int) float64 {
	if i == 0 {
		return histMin
	}
	lo := histMin * math.Pow(2, float64(i)/histBPO)
	return lo * math.Pow(2, 1/(2.0*histBPO))
}

// Observe records one value. NaN is ignored; negatives count as zero.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.maxIdx.Load()
		if int64(idx) <= old || h.maxIdx.CompareAndSwap(old, int64(idx)) {
			break
		}
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// TopBucket reports whether v falls within the top `within` occupied
// buckets of the distribution seen so far — the tail-based exemplar
// test: an observation this close to the observed maximum is worth
// keeping a trace for. Cheap enough for every observation (two atomic
// loads), and self-scaling: as the distribution grows a new maximum
// raises the bar.
func (h *Histogram) TopBucket(v float64, within int) bool {
	return int64(bucketIndex(v)) >= h.maxIdx.Load()-int64(within)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation, or NaN when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1), or
// NaN when the histogram is empty. The estimate is the geometric
// midpoint of the bucket holding the target rank.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histSize; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(histSize - 1)
}
