package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// quantiles are the precomputed summary quantiles every histogram
// exports.
var quantiles = []float64{0.5, 0.9, 0.99}

// WriteText renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order, series within a family likewise.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fam := range r.fams {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, strings.ReplaceAll(fam.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind.promType())
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				writeSample(bw, fam.name, s.labels, float64(s.c.Value()))
			case kindGauge:
				writeSample(bw, fam.name, s.labels, float64(s.g.Value()))
			case kindCounterFunc, kindGaugeFunc:
				v := 0.0
				if s.f != nil {
					v = s.f()
				}
				writeSample(bw, fam.name, s.labels, v)
			case kindHistogram:
				for _, q := range quantiles {
					kv := append(append([]string(nil), s.labels...),
						"quantile", strconv.FormatFloat(q, 'g', -1, 64))
					writeSample(bw, fam.name, kv, s.h.Quantile(q))
				}
				writeSample(bw, fam.name+"_sum", s.labels, s.h.Sum())
				writeSample(bw, fam.name+"_count", s.labels, float64(s.h.Count()))
			}
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name string, labels []string, v float64) {
	fmt.Fprintf(w, "%s %s\n", Key(name, labels...), strconv.FormatFloat(v, 'g', -1, 64))
}

// Handler returns an http.Handler serving the text exposition — mount
// it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// ParseText parses a Prometheus text exposition into a map from
// canonical series identifier (see Key — labels sorted by name) to
// value. Comment and blank lines are skipped; malformed lines are an
// error. It understands exactly what WriteText produces plus any
// exposition using the same subset of the format.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("metrics: malformed sample line %q", line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in %q: %v", line, err)
		}
		id := strings.TrimSpace(line[:sp])
		name, kv, err := parseSeriesID(id)
		if err != nil {
			return nil, err
		}
		out[Key(name, kv...)] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSeriesID splits `name{k="v",...}` into the name and the label
// pairs, handling escaped quotes and backslashes in values.
func parseSeriesID(id string) (string, []string, error) {
	brace := strings.IndexByte(id, '{')
	if brace < 0 {
		return id, nil, nil
	}
	if !strings.HasSuffix(id, "}") {
		return "", nil, fmt.Errorf("metrics: unterminated label set in %q", id)
	}
	name := id[:brace]
	body := id[brace+1 : len(id)-1]
	var kv []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return "", nil, fmt.Errorf("metrics: malformed label in %q", id)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return "", nil, fmt.Errorf("metrics: unterminated label value in %q", id)
		}
		kv = append(kv, key, val.String())
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return name, kv, nil
}
