package metrics

import (
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers counters and gauges from many
// goroutines; run under -race this also proves the primitives are
// data-race free.
func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_counter_total", "test")
	g := reg.Gauge("t_gauge", "test")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per*2 {
		t.Errorf("gauge = %d, want %d", got, workers*per*2)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// and checks the count and sum are exact.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_seconds", "test")
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	n := int64(workers * per)
	if got := h.Count(); got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
	want := float64(n) * float64(n-1) / 2 * 1e-6
	if got := h.Sum(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

// TestHistogramQuantiles compares the log-bucketed quantile estimates
// against the exact quantiles of a sorted reference sample across
// several orders of magnitude. The bucket geometry guarantees ≲4.5 %
// relative error; assert 10 %.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_q_seconds", "test")
	// Deterministic log-uniform sample over [100 µs, 10 s].
	var vals []float64
	x := uint64(88172645463325252)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		u := float64(x%1e9) / 1e9
		v := 1e-4 * math.Pow(1e5, u)
		vals = append(vals, v)
		h.Observe(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		want := sorted[idx]
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("q%.2f = %g, reference %g (rel err %.1f%%)", q, got, want, 100*rel)
		}
	}
}

func TestHistogramEmptyAndEdge(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Error("NaN observation should be ignored")
	}
	h.Observe(-1) // clamped to zero bucket
	h.Observe(0)
	h.Observe(1e12) // clamped to last bucket
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(0.01); q != histMin {
		t.Errorf("bottom quantile = %g, want %g", q, histMin)
	}
}

// TestExpositionRoundTrip renders a registry and parses it back.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_requests_total", "requests", "op", "store").Add(7)
	reg.Gauge("rt_depth", "queue depth").Set(-3)
	reg.GaugeFunc("rt_level", "sampled level", func() float64 { return 2.5 })
	reg.CounterFunc("rt_ticks_total", "sampled ticks", func() float64 { return 42 })
	h := reg.Histogram("rt_lat_seconds", "latency", "dir", "up", "device", "ios")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE rt_requests_total counter",
		"# TYPE rt_depth gauge",
		"# TYPE rt_ticks_total counter",
		"# TYPE rt_lat_seconds summary",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	vals, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		Key("rt_requests_total", "op", "store"): 0,
		Key("rt_depth"):                         -3,
		Key("rt_level"):                         2.5,
		Key("rt_ticks_total"):                   42,
		Key("rt_lat_seconds_count", "dir", "up", "device", "ios"): 100,
	}
	checks[Key("rt_requests_total", "op", "store")] = 7
	for k, want := range checks {
		got, ok := vals[k]
		if !ok {
			t.Errorf("parsed exposition missing %s", k)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, want %g", k, got, want)
		}
	}
	// The p50 of 1..100 ms should be ~50 ms within bucket resolution.
	p50 := vals[Key("rt_lat_seconds", "dir", "up", "device", "ios", "quantile", "0.5")]
	if p50 < 0.045 || p50 > 0.055 {
		t.Errorf("parsed p50 = %g, want ≈0.050", p50)
	}
}

func TestKeySortsLabels(t *testing.T) {
	a := Key("m", "zone", "us", "device", "ios")
	b := Key("m", "device", "ios", "zone", "us")
	if a != b {
		t.Errorf("Key not canonical: %q vs %q", a, b)
	}
	if want := `m{device="ios",zone="us"}`; a != want {
		t.Errorf("Key = %q, want %q", a, want)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("kind_clash", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("kind_clash", "")
}

// TestOpsMux exercises the full ops surface over HTTP.
func TestOpsMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_requests_total", "test").Add(3)
	health := &Health{}
	srv := httptest.NewServer(OpsMux(reg, health))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 503 {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	health.SetReady(true)
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after ready = %d, want 200", code)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	vals, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	if vals[Key("ops_requests_total")] != 3 {
		t.Errorf("ops_requests_total = %g, want 3", vals[Key("ops_requests_total")])
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d, memstats present = %v", code, strings.Contains(body, "memstats"))
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}
