package session

import (
	"testing"
	"testing/quick"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/trace"
)

var t0 = time.Date(2015, 8, 3, 12, 0, 0, 0, time.UTC)

// op returns a file operation log at t0+offset.
func op(user uint64, offset time.Duration, store bool) trace.Log {
	typ := trace.FileRetrieve
	if store {
		typ = trace.FileStore
	}
	return trace.Log{Time: t0.Add(offset), UserID: user, Type: typ}
}

// chunk returns a chunk request log at t0+offset.
func chunk(user uint64, offset time.Duration, store bool, bytes int64) trace.Log {
	typ := trace.ChunkRetrieve
	if store {
		typ = trace.ChunkStore
	}
	return trace.Log{Time: t0.Add(offset), UserID: user, Type: typ, Bytes: bytes}
}

func TestCutUserSingleSession(t *testing.T) {
	logs := []trace.Log{
		op(1, 0, true),
		chunk(1, 2*time.Second, true, 512<<10),
		op(1, 10*time.Second, true),
		chunk(1, 14*time.Second, true, 100<<10),
	}
	sessions := CutUser(logs, time.Hour)
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions, want 1", len(sessions))
	}
	s := sessions[0]
	if s.FileOps != 2 || s.StoreOps != 2 || s.RetrOps != 0 {
		t.Errorf("ops = %d/%d/%d", s.FileOps, s.StoreOps, s.RetrOps)
	}
	if s.StoreVol != 612<<10 {
		t.Errorf("store volume = %d", s.StoreVol)
	}
	if s.Class() != StoreOnly {
		t.Errorf("class = %v", s.Class())
	}
	if s.Length() != 14*time.Second {
		t.Errorf("length = %v", s.Length())
	}
	if s.OperatingTime() != 10*time.Second {
		t.Errorf("operating time = %v", s.OperatingTime())
	}
}

func TestCutUserSplitsAtTau(t *testing.T) {
	logs := []trace.Log{
		op(1, 0, true),
		op(1, 30*time.Minute, true), // same session (< 1h)
		op(1, 2*time.Hour, false),   // new session (90m gap)
		op(1, 2*time.Hour+time.Minute, false),
	}
	sessions := CutUser(logs, time.Hour)
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	if sessions[0].Class() != StoreOnly || sessions[1].Class() != RetrieveOnly {
		t.Errorf("classes = %v/%v", sessions[0].Class(), sessions[1].Class())
	}
}

func TestCutUserBoundaryExactlyTau(t *testing.T) {
	// A gap of exactly tau does NOT split (the rule is T > tau).
	logs := []trace.Log{
		op(1, 0, true),
		op(1, time.Hour, true),
	}
	if got := len(CutUser(logs, time.Hour)); got != 1 {
		t.Errorf("gap == tau produced %d sessions, want 1", got)
	}
	logs[1] = op(1, time.Hour+time.Nanosecond, true)
	if got := len(CutUser(logs, time.Hour)); got != 2 {
		t.Errorf("gap just over tau produced %d sessions, want 2", got)
	}
}

func TestChunkGapsDoNotSplit(t *testing.T) {
	// A long transfer keeps its chunks in the session even when chunk
	// gaps exceed tau.
	logs := []trace.Log{
		op(1, 0, false),
		chunk(1, 30*time.Minute, false, 512<<10),
		chunk(1, 100*time.Minute, false, 512<<10),
		chunk(1, 170*time.Minute, false, 512<<10),
	}
	sessions := CutUser(logs, time.Hour)
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions, want 1", len(sessions))
	}
	if sessions[0].ChunkReqs != 3 {
		t.Errorf("chunks = %d", sessions[0].ChunkReqs)
	}
	if sessions[0].Length() != 170*time.Minute {
		t.Errorf("length = %v", sessions[0].Length())
	}
}

func TestMixedSession(t *testing.T) {
	logs := []trace.Log{
		op(1, 0, true),
		chunk(1, time.Second, true, 100),
		op(1, time.Minute, false),
		chunk(1, 2*time.Minute, false, 200),
	}
	sessions := CutUser(logs, time.Hour)
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	s := sessions[0]
	if s.Class() != Mixed {
		t.Errorf("class = %v", s.Class())
	}
	if s.Volume() != 300 {
		t.Errorf("volume = %d", s.Volume())
	}
	if s.AvgFileSize() != 150 {
		t.Errorf("avg file size = %v", s.AvgFileSize())
	}
}

func TestOrphanChunksOpenEmptySession(t *testing.T) {
	logs := []trace.Log{
		chunk(1, 0, true, 512<<10),
		chunk(1, time.Second, true, 512<<10),
	}
	sessions := CutUser(logs, time.Hour)
	if len(sessions) != 1 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	if sessions[0].Class() != Empty {
		t.Errorf("class = %v, want empty", sessions[0].Class())
	}
	if sessions[0].StoreVol != 1<<20 {
		t.Errorf("volume = %d (orphan chunk volume must be preserved)", sessions[0].StoreVol)
	}
}

func TestCutUserEmptyInput(t *testing.T) {
	if got := CutUser(nil, time.Hour); got != nil {
		t.Errorf("empty input produced %v", got)
	}
}

func TestCutUserUnsortedInput(t *testing.T) {
	logs := []trace.Log{
		op(1, 2*time.Hour, false),
		op(1, 0, true),
		chunk(1, time.Second, true, 100),
	}
	sessions := CutUser(logs, time.Hour)
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2 (input should be sorted internally)", len(sessions))
	}
	if sessions[0].Class() != StoreOnly {
		t.Errorf("first session class = %v", sessions[0].Class())
	}
}

func TestIdentifierGroupsByUser(t *testing.T) {
	id := NewIdentifier(time.Hour)
	id.Add(op(2, 0, false))
	id.Add(op(1, 0, true))
	id.Add(op(1, 10*time.Second, true))
	id.Add(op(2, 2*time.Hour, false))
	sessions := id.Sessions()
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	// Ordered by user then time.
	if sessions[0].UserID != 1 || sessions[1].UserID != 2 || sessions[2].UserID != 2 {
		t.Errorf("session order: %d, %d, %d", sessions[0].UserID, sessions[1].UserID, sessions[2].UserID)
	}
}

func TestSummarize(t *testing.T) {
	sessions := []Session{
		{StoreOps: 2, FileOps: 2, StoreVol: 100},
		{RetrOps: 1, FileOps: 1, RetrVol: 50},
		{StoreOps: 1, RetrOps: 1, FileOps: 2},
		{}, // empty
	}
	st := Summarize(sessions)
	if st.Total != 4 {
		t.Errorf("total = %d", st.Total)
	}
	if st.ByClass[StoreOnly] != 1 || st.ByClass[RetrieveOnly] != 1 || st.ByClass[Mixed] != 1 || st.ByClass[Empty] != 1 {
		t.Errorf("class counts = %v", st.ByClass)
	}
	// Empty excluded from fractions: 1/3 each.
	if f := st.ClassFraction(StoreOnly); f != 1.0/3 {
		t.Errorf("store fraction = %v", f)
	}
	if st.StoreVol != 100 || st.RetrVol != 50 {
		t.Errorf("volumes = %d/%d", st.StoreVol, st.RetrVol)
	}
}

func TestNormalizedOperatingTimeBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := randx.New(seed)
		var logs []trace.Log
		off := time.Duration(0)
		for i := 0; i < 10; i++ {
			off += time.Duration(src.Int63n(int64(time.Minute)))
			if src.Bool(0.5) {
				logs = append(logs, op(1, off, true))
			} else {
				logs = append(logs, chunk(1, off, true, 100))
			}
		}
		for _, s := range CutUser(logs, time.Hour) {
			v := s.NormalizedOperatingTime()
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterOpGaps(t *testing.T) {
	logs := []trace.Log{
		op(1, 0, true),
		chunk(1, time.Second, true, 100), // chunks do not contribute gaps
		op(1, 10*time.Second, true),
		op(1, 70*time.Second, false),
		op(2, 0, true), // single op, no gap
	}
	gaps := InterOpGaps(logs)
	if len(gaps) != 2 {
		t.Fatalf("got %d gaps, want 2", len(gaps))
	}
	want := map[float64]bool{10: true, 60: true}
	for _, g := range gaps {
		if !want[g] {
			t.Errorf("unexpected gap %v", g)
		}
	}
}

func TestDefaultTauApplied(t *testing.T) {
	id := NewIdentifier(0)
	id.Add(op(1, 0, true))
	id.Add(op(1, 59*time.Minute, true)) // < 1h: same session
	id.Add(op(1, 3*time.Hour, true))    // > 1h gap: new session
	if got := len(id.Sessions()); got != 2 {
		t.Errorf("got %d sessions with default tau, want 2", got)
	}
}

func TestSessionDeviceAttribution(t *testing.T) {
	l := op(1, 0, true)
	l.Device = trace.IOS
	l.DeviceID = 42
	sessions := CutUser([]trace.Log{l}, time.Hour)
	if sessions[0].Device != trace.IOS || sessions[0].DeviceID != 42 {
		t.Error("session does not carry the first operation's device")
	}
}
