// Package session implements the paper's session identification
// methodology (§3.1.1): a user's request stream is cut into sessions
// wherever the gap between consecutive *file operations* exceeds a
// threshold τ, empirically one hour (the valley between the two
// components of the inter-operation time distribution). Chunk requests
// belong to the session of the file operation that precedes them.
//
// The package also computes per-session attributes used throughout
// §3.1: class (store-only / retrieve-only / mixed), size, operation
// count, user operating time and session length.
package session

import (
	"sort"
	"time"

	"mcloud/internal/trace"
)

// DefaultTau is the paper's session threshold.
const DefaultTau = time.Hour

// Session is one identified session of a user.
type Session struct {
	UserID   uint64
	DeviceID uint64 // device of the first operation
	Device   trace.DeviceType

	Start time.Time // first file operation
	End   time.Time // last request (operation or chunk)

	FileOps   int // number of file operations
	StoreOps  int
	RetrOps   int
	LastOp    time.Time // time of the last file operation
	StoreVol  int64     // bytes uploaded (chunk-store volume)
	RetrVol   int64     // bytes downloaded
	ChunkReqs int
}

// Class is the paper's session classification.
type Class uint8

// Session classes (§3.1.1).
const (
	StoreOnly Class = iota
	RetrieveOnly
	Mixed
	// Empty marks sessions whose logs contain no file operations
	// (possible in truncated traces); the paper's analysis drops them.
	Empty
)

var classNames = [...]string{"store-only", "retrieve-only", "mixed", "empty"}

func (c Class) String() string { return classNames[c] }

// Class returns the session class.
func (s *Session) Class() Class {
	switch {
	case s.StoreOps > 0 && s.RetrOps > 0:
		return Mixed
	case s.StoreOps > 0:
		return StoreOnly
	case s.RetrOps > 0:
		return RetrieveOnly
	default:
		return Empty
	}
}

// Length is the session length per Figure 2: first file operation to
// the last request.
func (s *Session) Length() time.Duration { return s.End.Sub(s.Start) }

// OperatingTime is the user operating time (Fig 4): the span between
// the first and last file operation requests.
func (s *Session) OperatingTime() time.Duration { return s.LastOp.Sub(s.Start) }

// NormalizedOperatingTime is the operating time divided by the session
// length; 0 when the session has no measurable length.
func (s *Session) NormalizedOperatingTime() float64 {
	l := s.Length()
	if l <= 0 {
		return 0
	}
	return float64(s.OperatingTime()) / float64(l)
}

// Volume returns the total bytes moved.
func (s *Session) Volume() int64 { return s.StoreVol + s.RetrVol }

// AvgFileSize is the session data volume divided by the number of
// file operations (§3.1.4), 0 for operation-less sessions.
func (s *Session) AvgFileSize() float64 {
	if s.FileOps == 0 {
		return 0
	}
	return float64(s.Volume()) / float64(s.FileOps)
}

// Identifier incrementally cuts per-user request streams into
// sessions. Feed it logs in any order grouped however they arrive;
// it orders each user's requests internally on Close.
type Identifier struct {
	tau    time.Duration
	byUser map[uint64][]trace.Log
}

// NewIdentifier returns an Identifier with threshold tau (DefaultTau
// if zero).
func NewIdentifier(tau time.Duration) *Identifier {
	if tau <= 0 {
		tau = DefaultTau
	}
	return &Identifier{tau: tau, byUser: make(map[uint64][]trace.Log)}
}

// Add buffers one log entry.
func (id *Identifier) Add(l trace.Log) {
	id.byUser[l.UserID] = append(id.byUser[l.UserID], l)
}

// Sessions cuts every user's stream and returns all sessions, ordered
// by (user, start time).
func (id *Identifier) Sessions() []Session {
	users := make([]uint64, 0, len(id.byUser))
	for u := range id.byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	var out []Session
	for _, u := range users {
		out = append(out, CutUser(id.byUser[u], id.tau)...)
	}
	return out
}

// CutUser identifies the sessions in one user's logs (sorted
// internally). The session boundary rule follows the paper exactly:
// a file operation more than τ after the previous file operation of
// the same user begins a new session. Chunk requests extend the
// current session regardless of their gap, since chunk transfers of
// large files legitimately span long periods.
func CutUser(logs []trace.Log, tau time.Duration) []Session {
	if len(logs) == 0 {
		return nil
	}
	if tau <= 0 {
		tau = DefaultTau
	}
	sorted := make([]trace.Log, len(logs))
	copy(sorted, logs)
	trace.SortByTime(sorted)

	var out []Session
	var cur *Session
	var lastOp time.Time
	haveOp := false

	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}

	for _, l := range sorted {
		if l.Type.FileOp() {
			if !haveOp || l.Time.Sub(lastOp) > tau {
				flush()
				cur = &Session{
					UserID:   l.UserID,
					DeviceID: l.DeviceID,
					Device:   l.Device,
					Start:    l.Time,
					End:      l.Time,
				}
			}
			lastOp = l.Time
			haveOp = true
			cur.FileOps++
			cur.LastOp = l.Time
			if l.Type.Store() {
				cur.StoreOps++
			} else {
				cur.RetrOps++
			}
			if l.Time.After(cur.End) {
				cur.End = l.Time
			}
			continue
		}

		// Chunk request: attach to the current session; chunk traffic
		// before any file operation (trace truncation) opens an Empty
		// session so no volume is lost.
		if cur == nil {
			cur = &Session{
				UserID:   l.UserID,
				DeviceID: l.DeviceID,
				Device:   l.Device,
				Start:    l.Time,
				End:      l.Time,
				LastOp:   l.Time,
			}
		}
		cur.ChunkReqs++
		if l.Type.Store() {
			cur.StoreVol += l.Bytes
		} else {
			cur.RetrVol += l.Bytes
		}
		if l.Time.After(cur.End) {
			cur.End = l.Time
		}
	}
	flush()
	return out
}

// Stats summarizes a session set.
type Stats struct {
	Total    int
	ByClass  [4]int // indexed by Class
	TotalOps int
	StoreVol int64
	RetrVol  int64
}

// Summarize tallies a session list.
func Summarize(sessions []Session) Stats {
	var st Stats
	for i := range sessions {
		s := &sessions[i]
		st.Total++
		st.ByClass[s.Class()]++
		st.TotalOps += s.FileOps
		st.StoreVol += s.StoreVol
		st.RetrVol += s.RetrVol
	}
	return st
}

// ClassFraction returns the share of sessions in class c (Empty
// sessions are excluded from the denominator, as in the paper).
func (st Stats) ClassFraction(c Class) float64 {
	denom := st.Total - st.ByClass[Empty]
	if denom == 0 {
		return 0
	}
	return float64(st.ByClass[c]) / float64(denom)
}

// InterOpGaps returns every same-user gap between consecutive file
// operations, in seconds — the sample behind Figure 3. Logs may be in
// any order; they are grouped and sorted internally.
func InterOpGaps(logs []trace.Log) []float64 {
	byUser := make(map[uint64][]trace.Log)
	for _, l := range logs {
		if l.Type.FileOp() {
			byUser[l.UserID] = append(byUser[l.UserID], l)
		}
	}
	var gaps []float64
	for _, ls := range byUser {
		trace.SortByTime(ls)
		for i := 1; i < len(ls); i++ {
			gap := ls[i].Time.Sub(ls[i-1].Time).Seconds()
			if gap > 0 {
				gaps = append(gaps, gap)
			}
		}
	}
	return gaps
}
