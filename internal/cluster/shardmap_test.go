package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseMetaShards(t *testing.T) {
	groups, err := ParseMetaShards("http://a:1,http://a:2; http://b:3 ,http://b:4/")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[1][1] != "http://b:4" {
		t.Fatalf("trailing slash not trimmed: %q", groups[1][1])
	}
	if _, err := ParseMetaShards(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := ParseMetaShards("http://a:1;;http://b:2"); err == nil {
		t.Fatal("empty shard group accepted")
	}
}

func TestShardForCoversAllShardsEvenly(t *testing.T) {
	m, err := NewMetaShardMap(1, [][]string{{"a"}, {"b"}, {"c"}, {"d"}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for u := uint64(1); u <= 4000; u++ {
		s := m.ShardFor(u)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardFor(%d) = %d out of range", u, s)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < 600 || c > 1400 {
			t.Fatalf("shard %d got %d of 4000 users — hash badly skewed: %v", i, c, counts)
		}
	}
	// Determinism across map instances with the same shard count.
	m2, _ := NewMetaShardMap(9, [][]string{{"w"}, {"x"}, {"y"}, {"z"}})
	for u := uint64(1); u <= 100; u++ {
		if m.ShardFor(u) != m2.ShardFor(u) {
			t.Fatalf("ShardFor(%d) differs between equal-count maps", u)
		}
	}
}

func TestShardForSingleAndNil(t *testing.T) {
	var m *MetaShardMap
	if m.ShardFor(42) != 0 || m.NumShards() != 1 {
		t.Fatal("nil map must behave as one shard")
	}
	one, _ := NewMetaShardMap(1, [][]string{{"a"}})
	for u := uint64(0); u < 50; u++ {
		if one.ShardFor(u) != 0 {
			t.Fatal("single-shard map must route everything to 0")
		}
	}
}

func TestResolveShardMapVersioning(t *testing.T) {
	dir := t.TempDir()
	g1 := [][]string{{"http://a:1"}, {"http://b:2"}}
	m1, err := ResolveShardMap(dir, g1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 {
		t.Fatalf("fresh map version = %d, want 1", m1.Version)
	}
	// Same layout: version sticks.
	m2, err := ResolveShardMap(dir, g1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 1 {
		t.Fatalf("unchanged layout bumped version to %d", m2.Version)
	}
	// Changed layout: version bumps and persists.
	g2 := [][]string{{"http://a:1"}, {"http://b:2"}, {"http://c:3"}}
	m3, err := ResolveShardMap(dir, g2)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Version != 2 {
		t.Fatalf("changed layout version = %d, want 2", m3.Version)
	}
	loaded, err := LoadShardMap(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != 2 || len(loaded.Shards) != 3 {
		t.Fatalf("persisted map = %+v", loaded)
	}
	// RAM node: no file written.
	ram, err := ResolveShardMap("", g1)
	if err != nil || ram.Version != 1 {
		t.Fatalf("ram map = %+v err %v", ram, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shardmap.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind")
	}
}
