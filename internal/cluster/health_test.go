package cluster

import (
	"testing"
	"time"
)

func TestHealthBreaker(t *testing.T) {
	h := NewHealth(3, 2*time.Second)
	now := time.Unix(1000, 0)
	h.SetClock(func() time.Time { return now })

	const node = "http://a:1"
	if !h.Alive(node) {
		t.Fatal("unknown node should be alive")
	}
	if h.ReportFailure(node) {
		t.Fatal("breaker tripped before threshold")
	}
	h.ReportFailure(node)
	if !h.Alive(node) {
		t.Fatal("node below threshold marked down")
	}
	if !h.ReportFailure(node) {
		t.Fatal("third consecutive failure should trip the breaker")
	}
	if h.Alive(node) {
		t.Fatal("tripped node still alive")
	}
	if h.Down() != 1 {
		t.Fatalf("Down() = %d, want 1", h.Down())
	}

	// Cooldown lapses: half-open, the node is probed again.
	now = now.Add(3 * time.Second)
	if !h.Alive(node) {
		t.Fatal("node past cooldown should be probe-able")
	}
	if h.Down() != 0 {
		t.Fatalf("Down() = %d after cooldown, want 0", h.Down())
	}

	// A failure during the probe re-extends the window immediately.
	h.ReportFailure(node)
	if h.Alive(node) {
		t.Fatal("failed probe should re-close the breaker")
	}

	// Success resets everything.
	now = now.Add(5 * time.Second)
	h.ReportSuccess(node)
	if !h.Alive(node) {
		t.Fatal("node alive after success")
	}
	if h.ReportFailure(node) {
		t.Fatal("streak should restart after a success")
	}
}

func TestHealthOrder(t *testing.T) {
	h := NewHealth(1, time.Minute)
	now := time.Unix(1000, 0)
	h.SetClock(func() time.Time { return now })

	owners := []string{"a", "b", "c"}
	h.ReportFailure("a") // threshold 1: down immediately

	got := h.Order(owners)
	want := []string{"b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order = %v, want %v", got, want)
		}
	}
	if len(h.Order(nil)) != 0 {
		t.Fatal("Order(nil) should be empty")
	}
}
