package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// MetaShard is one metadata shard: a contiguous user-hash range owned
// by a WAL-backed primary/standby group. Endpoints lists the group's
// member base URLs in configuration order (conventionally primary
// first); which member is the *current* primary is a runtime fact
// discovered via /v1/meta/wal/status, never recorded in the map.
type MetaShard struct {
	ID        int      `json:"id"`
	Endpoints []string `json:"endpoints"`
}

// MetaShardMap is the versioned assignment of user-hash ranges to
// metadata shards. The 64-bit user-hash space is split into
// len(Shards) equal contiguous ranges; shard i owns range i. The map
// is immutable once built — resharding produces a new map with a
// higher Version, and every /v1/meta/* exchange carries
// "shard@version" so both sides can detect skew.
//
// Version 0 is reserved for "no map" (an unsharded legacy deployment);
// real maps start at 1.
type MetaShardMap struct {
	Version uint64      `json:"version"`
	Shards  []MetaShard `json:"shards"`
}

// NewMetaShardMap builds a single-version map over the given shard
// endpoint groups. Groups must be non-empty; endpoints may be empty
// (a server that knows the shard *count* but lets clients keep their
// bootstrap endpoints, e.g. an unsharded node advertising itself).
func NewMetaShardMap(version uint64, groups [][]string) (*MetaShardMap, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("cluster: shard map needs at least one shard")
	}
	m := &MetaShardMap{Version: version, Shards: make([]MetaShard, len(groups))}
	for i, eps := range groups {
		m.Shards[i] = MetaShard{ID: i, Endpoints: append([]string(nil), eps...)}
	}
	return m, nil
}

// ParseMetaShards parses the -metashards flag syntax: shard groups
// separated by ';', endpoints within a group separated by ','. For
// example "http://a:8070,http://a:8071;http://b:8072,http://b:8073"
// is a 2-shard map where each shard has a primary+standby pair.
func ParseMetaShards(spec string) ([][]string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("cluster: empty metadata shard spec")
	}
	var groups [][]string
	for _, part := range strings.Split(spec, ";") {
		var eps []string
		for _, ep := range strings.Split(part, ",") {
			ep = strings.TrimRight(strings.TrimSpace(ep), "/")
			if ep != "" {
				eps = append(eps, ep)
			}
		}
		if len(eps) == 0 {
			return nil, fmt.Errorf("cluster: metadata shard spec %q has an empty shard group", spec)
		}
		groups = append(groups, eps)
	}
	return groups, nil
}

// UserHash maps a user ID onto the 64-bit shard key space (FNV-1a, so
// every process — server, client, rebalancer — agrees without
// coordination).
func UserHash(user uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], user)
	h := fnv.New64a()
	h.Write(b[:])
	return h.Sum64()
}

// ShardFor returns the shard that owns the given user: the index of
// the equal-width hash range UserHash(user) falls into.
func (m *MetaShardMap) ShardFor(user uint64) int {
	if m == nil || len(m.Shards) <= 1 {
		return 0
	}
	width := math.MaxUint64/uint64(len(m.Shards)) + 1
	return int(UserHash(user) / width)
}

// NumShards returns the shard count; a nil map is one implicit shard.
func (m *MetaShardMap) NumShards() int {
	if m == nil || len(m.Shards) == 0 {
		return 1
	}
	return len(m.Shards)
}

// Endpoints returns the endpoint list of shard id, nil when the map
// does not cover it.
func (m *MetaShardMap) Endpoints(id int) []string {
	if m == nil || id < 0 || id >= len(m.Shards) {
		return nil
	}
	return m.Shards[id].Endpoints
}

// SameLayout reports whether two maps assign the same endpoints to the
// same shards (ignoring Version): the test for "the operator re-ran
// with an unchanged -metashards, don't bump the version".
func (m *MetaShardMap) SameLayout(o *MetaShardMap) bool {
	if m == nil || o == nil {
		return m == o
	}
	if len(m.Shards) != len(o.Shards) {
		return false
	}
	for i := range m.Shards {
		a, b := m.Shards[i].Endpoints, o.Shards[i].Endpoints
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// shardMapFile is the on-disk name of the persisted map inside a
// metadata node's data directory.
const shardMapFile = "shardmap.json"

// LoadShardMap reads the persisted shard map from dir. A missing file
// is a fresh start (nil map, no error).
func LoadShardMap(dir string) (*MetaShardMap, error) {
	b, err := os.ReadFile(filepath.Join(dir, shardMapFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: shard map: %w", err)
	}
	var m MetaShardMap
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: shard map %s: %w", filepath.Join(dir, shardMapFile), err)
	}
	return &m, nil
}

// SaveShardMap persists the map into dir (atomic rename, so a crash
// mid-write leaves the previous version intact). dir is created if
// needed — the map is resolved before the WAL first opens it.
func SaveShardMap(dir string, m *MetaShardMap) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: shard map: %w", err)
	}
	tmp := filepath.Join(dir, shardMapFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("cluster: shard map: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, shardMapFile)); err != nil {
		return fmt.Errorf("cluster: shard map: %w", err)
	}
	return nil
}

// ResolveShardMap reconciles a configured shard layout against the
// persisted one in dir: an unchanged layout keeps its version, a
// changed layout gets the successor version, and the result is
// persisted back. dir == "" (a RAM-only node) yields version 1
// without touching disk.
func ResolveShardMap(dir string, groups [][]string) (*MetaShardMap, error) {
	next, err := NewMetaShardMap(1, groups)
	if err != nil {
		return nil, err
	}
	if dir == "" {
		return next, nil
	}
	prev, err := LoadShardMap(dir)
	if err != nil {
		return nil, err
	}
	if prev != nil {
		if next.SameLayout(prev) {
			return prev, nil
		}
		next.Version = prev.Version + 1
	}
	if err := SaveShardMap(dir, next); err != nil {
		return nil, err
	}
	return next, nil
}
