package cluster

import (
	"time"

	"mcloud/internal/metrics"
)

// Metrics aggregates the cluster-layer series. All methods are safe
// on a nil receiver so single-node deployments pay nothing.
type Metrics struct {
	forwardsPut     *metrics.Counter
	forwardsGet     *metrics.Counter
	fanout          *metrics.Histogram
	repairs         *metrics.Counter
	replicaErrors   *metrics.Counter
	getFailovers    *metrics.Counter
	underreplicated *metrics.Gauge
}

// NewMetrics registers the cluster series:
//
//	mcs_cluster_forwards_total{dir}     replica sub-requests sent to peers
//	mcs_cluster_fanout_seconds          PUT replication time to write quorum
//	mcs_cluster_repairs_total           chunk replicas re-created (read repair + background)
//	mcs_cluster_replica_errors_total    failed replica sub-requests
//	mcs_cluster_get_failovers_total     GETs served by a non-primary replica
//	mcs_cluster_underreplicated         chunks currently below full replication
//	mcs_cluster_nodes                   configured membership size
//	mcs_cluster_nodes_down              members inside a breaker down-window
func NewMetrics(reg *metrics.Registry, ring *Ring, health *Health) *Metrics {
	m := &Metrics{
		forwardsPut: reg.Counter("mcs_cluster_forwards_total",
			"Replica sub-requests this node sent to peers.", "dir", "put"),
		forwardsGet: reg.Counter("mcs_cluster_forwards_total",
			"Replica sub-requests this node sent to peers.", "dir", "get"),
		fanout: reg.Histogram("mcs_cluster_fanout_seconds",
			"Time for a replicated PUT to reach its write quorum."),
		repairs: reg.Counter("mcs_cluster_repairs_total",
			"Chunk replicas re-created by read repair or the background repair loop."),
		replicaErrors: reg.Counter("mcs_cluster_replica_errors_total",
			"Replica sub-requests that failed."),
		getFailovers: reg.Counter("mcs_cluster_get_failovers_total",
			"Chunk reads served by a replica other than the primary."),
		underreplicated: reg.Gauge("mcs_cluster_underreplicated",
			"Chunks acknowledged below full replication and awaiting repair."),
	}
	if ring != nil {
		reg.GaugeFunc("mcs_cluster_nodes", "Configured cluster membership size.",
			func() float64 { return float64(ring.Size()) })
	}
	if health != nil {
		reg.GaugeFunc("mcs_cluster_nodes_down", "Members currently inside a breaker down-window.",
			func() float64 { return float64(health.Down()) })
	}
	return m
}

// ForwardPut counts one replica PUT sent to a peer.
func (m *Metrics) ForwardPut() {
	if m != nil {
		m.forwardsPut.Inc()
	}
}

// ForwardGet counts one replica GET sent to a peer.
func (m *Metrics) ForwardGet() {
	if m != nil {
		m.forwardsGet.Inc()
	}
}

// ObserveFanout records the time a replicated PUT took to reach its
// write quorum.
func (m *Metrics) ObserveFanout(d time.Duration) {
	if m != nil {
		m.fanout.ObserveDuration(d)
	}
}

// Repair counts one replica re-created.
func (m *Metrics) Repair() {
	if m != nil {
		m.repairs.Inc()
	}
}

// ReplicaError counts one failed replica sub-request.
func (m *Metrics) ReplicaError() {
	if m != nil {
		m.replicaErrors.Inc()
	}
}

// GetFailover counts one read served away from the primary.
func (m *Metrics) GetFailover() {
	if m != nil {
		m.getFailovers.Inc()
	}
}

// SetUnderreplicated publishes the current repair-queue depth.
func (m *Metrics) SetUnderreplicated(n int) {
	if m != nil {
		m.underreplicated.Set(int64(n))
	}
}
