package cluster

import (
	"sync"
	"time"
)

// Health tracks which cluster members are currently answering. It is
// a simple per-node circuit breaker: Threshold consecutive failures
// mark a node down for Cooldown, after which it is probed again (the
// next caller gets to try it). Successes reset the streak. The zero
// value is not usable; call NewHealth.
//
// Liveness here is an optimization, not a correctness input: a node
// wrongly considered alive costs one failed sub-request before the
// caller fails over, and a node wrongly considered down is simply
// skipped until its cooldown lapses. Placement never depends on it.
type Health struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu    sync.Mutex
	state map[string]*nodeHealth
}

type nodeHealth struct {
	failures  int       // consecutive failures
	downUntil time.Time // zero when up
}

// NewHealth returns a tracker marking nodes down after threshold
// consecutive failures (default 3) for cooldown (default 2s).
func NewHealth(threshold int, cooldown time.Duration) *Health {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Health{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     make(map[string]*nodeHealth),
	}
}

// SetClock overrides the time source (tests).
func (h *Health) SetClock(now func() time.Time) { h.now = now }

func (h *Health) get(node string) *nodeHealth {
	s, ok := h.state[node]
	if !ok {
		s = &nodeHealth{}
		h.state[node] = s
	}
	return s
}

// ReportSuccess records a successful exchange with node.
func (h *Health) ReportSuccess(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.get(node)
	s.failures = 0
	s.downUntil = time.Time{}
}

// ReportFailure records a failed exchange; it returns true when this
// failure tripped the breaker (the node just transitioned to down).
func (h *Health) ReportFailure(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.get(node)
	s.failures++
	if s.failures >= h.threshold && s.downUntil.IsZero() {
		s.downUntil = h.now().Add(h.cooldown)
		return true
	}
	if !s.downUntil.IsZero() {
		// Still failing during/after a down window: extend it.
		s.downUntil = h.now().Add(h.cooldown)
	}
	return false
}

// Alive reports whether node should be tried. A node past its
// cooldown is considered alive again (half-open probe).
func (h *Health) Alive(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.state[node]
	if !ok || s.downUntil.IsZero() {
		return true
	}
	return !h.now().Before(s.downUntil)
}

// Down counts members currently inside a down window.
func (h *Health) Down() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	t := h.now()
	for _, s := range h.state {
		if !s.downUntil.IsZero() && t.Before(s.downUntil) {
			n++
		}
	}
	return n
}

// Order partitions owners into alive-first order, preserving the
// relative (ring) order within each partition — the caller tries the
// nearest live replica first but still falls back to "down" nodes
// last, since the breaker can be stale.
func (h *Health) Order(owners []string) []string {
	out := make([]string, 0, len(owners))
	var down []string
	for _, o := range owners {
		if h.Alive(o) {
			out = append(out, o)
		} else {
			down = append(down, o)
		}
	}
	return append(out, down...)
}
