package cluster

import (
	"crypto/md5"
	"fmt"
	"testing"
)

func testKeys(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(md5.Sum([]byte(fmt.Sprintf("chunk-%d", i))))
	}
	return keys
}

func nodeList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node%d:8081", i)
	}
	return out
}

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	r1, err := NewRing(nodeList(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in a different declaration order must place
	// chunks identically: placement is a function of the member names.
	shuffled := []string{"http://node3:8081", "http://node0:8081", "http://node4:8081", "http://node1:8081", "http://node2:8081"}
	r2, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		o1 := r1.Owners(k, 3)
		o2 := r2.Owners(k, 3)
		if len(o1) != 3 {
			t.Fatalf("want 3 owners, got %v", o1)
		}
		seen := map[string]bool{}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("placement depends on declaration order: %v vs %v", o1, o2)
			}
			if seen[o1[i]] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[o1[i]] = true
		}
	}
}

func TestRingOwnersClampedToMembership(t *testing.T) {
	r, err := NewRing(nodeList(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(50) {
		if got := r.Owners(k, 3); len(got) != 2 {
			t.Fatalf("owners on a 2-node ring: got %v", got)
		}
	}
	if r.Owners(testKeys(1)[0], 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestRingBalance(t *testing.T) {
	nodes := nodeList(5)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	mean := float64(len(keys)) / float64(len(nodes))
	for n, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("node %s holds %.2fx the mean primary load (%d keys)", n, ratio, c)
		}
	}
}

func TestRingMinimalMovementOnMembershipChange(t *testing.T) {
	before, err := NewRing(nodeList(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(nodeList(5), 0) // one node added
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(5000)
	moved := 0
	for _, k := range keys {
		if before.Primary(k) != after.Primary(k) {
			moved++
		}
	}
	// Consistent hashing should move roughly 1/5 of the primaries to
	// the new node; naive mod-N hashing would move ~4/5.
	frac := float64(moved) / float64(len(keys))
	if frac > 0.35 {
		t.Errorf("adding one node to four moved %.0f%% of primaries; want ~20%%", 100*frac)
	}
	if frac == 0 {
		t.Error("adding a node moved nothing; ring is ignoring membership")
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty member accepted")
	}
}

func TestRingIsOwner(t *testing.T) {
	r, err := NewRing(nodeList(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		owners := r.Owners(k, 3)
		for _, o := range owners {
			if !r.IsOwner(k, 3, o) {
				t.Fatalf("owner %s of %x not reported by IsOwner", o, k[:4])
			}
		}
		nonOwners := 0
		for _, n := range r.Nodes() {
			if !r.IsOwner(k, 3, n) {
				nonOwners++
			}
		}
		if nonOwners != 2 {
			t.Fatalf("want 2 non-owners on a 5-node ring with N=3, got %d", nonOwners)
		}
	}
}
