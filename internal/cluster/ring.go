// Package cluster provides the placement and membership substrate for
// running the storage service across multiple front-end nodes, the way
// the paper's production deployment spreads one logical namespace over
// many independently-logging front-ends (§2). A Ring maps every chunk
// digest onto an ordered replica set drawn from a static membership
// list via consistent hashing with virtual nodes; Health tracks which
// members are currently answering; Metrics exposes the mcs_cluster_*
// series. The package is deliberately storage-agnostic: keys are raw
// MD5 digests, members are opaque base-URL strings, and all decisions
// are pure functions of (membership, key) so a placement computed by
// any node — or by an offline rebalance pass — agrees with every
// other.
package cluster

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the number of virtual nodes each member projects
// onto the ring. 64 keeps the per-member load spread within a few
// percent for small clusters while the ring stays tiny (a 3-node ring
// is 192 points).
const DefaultVNodes = 64

// Key is a chunk content digest (MD5, as everywhere in the service).
type Key [md5.Size]byte

// point is one virtual node: a position on the 64-bit ring and the
// member that owns it.
type point struct {
	pos  uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a static membership
// list. Construct a new Ring on membership change; lookups are
// read-only and safe for concurrent use.
type Ring struct {
	nodes  []string
	points []point
}

// NewRing builds a ring over the given member base URLs. vnodes <= 0
// selects DefaultVNodes. Duplicate and empty members are rejected so
// a mistyped -peers list fails loudly instead of double-weighting one
// node.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]point, 0, len(nodes)*vnodes),
	}
	for i, n := range r.nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty member at position %d", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate member %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			sum := md5.Sum([]byte(fmt.Sprintf("%s#%d", n, v)))
			r.points = append(r.points, point{pos: binary.BigEndian.Uint64(sum[:8]), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Tie-break on member order so equal hash points (vanishingly
		// rare) still sort deterministically everywhere.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the membership list in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// Contains reports whether node is a member.
func (r *Ring) Contains(node string) bool {
	for _, n := range r.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// keyPos places a chunk digest on the ring. The digest is already a
// uniform hash, so its leading 8 bytes are the position directly — the
// placement is literally keyed by the chunk MD5.
func keyPos(key Key) uint64 { return binary.BigEndian.Uint64(key[:8]) }

// Owners returns the first n distinct members clockwise from the
// key's position — the chunk's replica set, primary first. n is
// clamped to the membership size.
func (r *Ring) Owners(key Key, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	pos := keyPos(key)
	// First point at or after pos, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	owners := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.points) && len(owners) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		owners = append(owners, r.nodes[p.node])
	}
	return owners
}

// Primary returns the first owner.
func (r *Ring) Primary(key Key) string { return r.Owners(key, 1)[0] }

// IsOwner reports whether node is among the key's n owners.
func (r *Ring) IsOwner(key Key, n int, node string) bool {
	for _, o := range r.Owners(key, n) {
		if o == node {
			return true
		}
	}
	return false
}
