package core

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

func genLogs(t *testing.T, cfg workload.Config) []trace.Log {
	t.Helper()
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Drain(g.Stream())
}

func runOver(t *testing.T, a *Analyzer) Results {
	t.Helper()
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// compareExact checks the analysis outputs that must be bit-identical
// between a sequential pass and a user-sharded parallel pass (or a
// Merge of partials): counters, integer series, count-ratio fractions,
// and sorted sample sets.
func compareExact(t *testing.T, want, got Results) {
	t.Helper()
	if got.Logs != want.Logs {
		t.Errorf("Logs = %d, want %d", got.Logs, want.Logs)
	}
	if got.Users != want.Users {
		t.Errorf("Users = %d, want %d", got.Users, want.Users)
	}
	if !reflect.DeepEqual(got.Workload, want.Workload) {
		t.Errorf("Workload differs:\n got  %+v\n want %+v", got.Workload, want.Workload)
	}
	if !reflect.DeepEqual(got.Engagement, want.Engagement) {
		t.Errorf("Engagement differs:\n got  %+v\n want %+v", got.Engagement, want.Engagement)
	}
	if !reflect.DeepEqual(got.Usage.Table3, want.Usage.Table3) {
		t.Errorf("Usage.Table3 differs:\n got  %+v\n want %+v", got.Usage.Table3, want.Usage.Table3)
	}
	// Ratio slices are per-user in map iteration order; compare as sets.
	ratioSets := []struct {
		name      string
		got, want []float64
	}{
		{"RatiosMobileOnly", got.Usage.RatiosMobileOnly, want.Usage.RatiosMobileOnly},
		{"RatiosMobileAndPC", got.Usage.RatiosMobileAndPC, want.Usage.RatiosMobileAndPC},
		{"RatiosPCOnly", got.Usage.RatiosPCOnly, want.Usage.RatiosPCOnly},
	}
	for _, rs := range ratioSets {
		if !reflect.DeepEqual(sortedCopy(rs.got), sortedCopy(rs.want)) {
			t.Errorf("Usage.%s differs as a multiset (%d vs %d values)",
				rs.name, len(rs.got), len(rs.want))
		}
	}
	// Session classification fractions are ratios of counts.
	if got.Sessions.Stats.Total != want.Sessions.Stats.Total {
		t.Errorf("session count = %d, want %d", got.Sessions.Stats.Total, want.Sessions.Stats.Total)
	}
	fracs := []struct {
		name      string
		got, want float64
	}{
		{"StoreOnlyFrac", got.Sessions.StoreOnlyFrac, want.Sessions.StoreOnlyFrac},
		{"RetrieveOnlyFrac", got.Sessions.RetrieveOnlyFrac, want.Sessions.RetrieveOnlyFrac},
		{"MixedFrac", got.Sessions.MixedFrac, want.Sessions.MixedFrac},
		{"POneOp", got.Sessions.POneOp, want.Sessions.POneOp},
		{"POver20Ops", got.Sessions.POver20Ops, want.Sessions.POver20Ops},
	}
	for _, f := range fracs {
		if f.got != f.want {
			t.Errorf("Sessions.%s = %v, want %v", f.name, f.got, f.want)
		}
	}
}

// comparePerfQuantiles checks the reservoir-backed performance ECDFs
// at several quantiles within a relative tolerance (0 = exact).
func comparePerfQuantiles(t *testing.T, want, got Results, relTol float64, qs ...float64) {
	t.Helper()
	if len(qs) == 0 {
		qs = []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	}
	type named struct {
		name      string
		got, want interface {
			Quantile(float64) float64
			N() int
		}
	}
	pairs := []named{
		{"RTT", got.Perf.RTT, want.Perf.RTT},
		{"SWnd", got.Perf.SWnd, want.Perf.SWnd},
	}
	for _, dev := range []trace.DeviceType{trace.Android, trace.IOS} {
		pairs = append(pairs,
			named{"UploadTime/" + dev.String(), got.Perf.UploadTime[dev], want.Perf.UploadTime[dev]},
			named{"DownloadTime/" + dev.String(), got.Perf.DownloadTime[dev], want.Perf.DownloadTime[dev]},
		)
	}
	for _, p := range pairs {
		if p.want.N() == 0 {
			t.Fatalf("Perf.%s: reference ECDF is empty; workload too small for the test", p.name)
		}
		for _, q := range qs {
			w, g := p.want.Quantile(q), p.got.Quantile(q)
			if relTol == 0 {
				if g != w {
					t.Errorf("Perf.%s q%.2f = %v, want exactly %v", p.name, q, g, w)
				}
				continue
			}
			if diff := math.Abs(g - w); diff > relTol*math.Abs(w) {
				t.Errorf("Perf.%s q%.2f = %v, want %v within %.0f%%", p.name, q, g, w, relTol*100)
			}
		}
	}
}

// TestParallelAnalyzerMatchesSequential is the tentpole equivalence
// check: user-sharded analysis across 4 workers must reproduce the
// sequential pass — exactly while the sample reservoirs stay within
// capacity (merge is then plain concatenation of disjoint per-shard
// samples, and every ECDF sorts before use).
func TestParallelAnalyzerMatchesSequential(t *testing.T) {
	logs := genLogs(t, workload.Config{Users: 900, PCOnlyUsers: 250, Seed: 20260806})

	seq := NewAnalyzer(Options{})
	for _, l := range logs {
		seq.Add(l)
	}
	want := runOver(t, seq)

	par := NewParallelAnalyzer(Options{}, 4)
	for _, l := range logs {
		par.Add(l)
	}
	got := runOver(t, par.Finish())

	compareExact(t, want, got)
	comparePerfQuantiles(t, want, got, 0)
}

// TestParallelAnalyzerCappedReservoirs forces every reservoir to
// overflow so Finish must re-sample on merge; the distributional
// summaries then agree only statistically, within a quantile
// tolerance.
func TestParallelAnalyzerCappedReservoirs(t *testing.T) {
	logs := genLogs(t, workload.Config{Users: 1200, PCOnlyUsers: 100, Seed: 99})
	opts := Options{MaxSamples: 1000}

	seq := NewAnalyzer(opts)
	for _, l := range logs {
		seq.Add(l)
	}
	want := runOver(t, seq)
	if n := want.Perf.RTT.N(); n != 1000 {
		t.Fatalf("RTT reservoir holds %d samples, want it saturated at 1000", n)
	}

	par := NewParallelAnalyzer(opts, 4)
	for _, l := range logs {
		par.Add(l)
	}
	got := runOver(t, par.Finish())

	// Counters stay exact regardless of reservoir capacity. The
	// distributional summaries are two independent 1000-draw samples;
	// central quantiles of the heavy-tailed transfer times agree to a
	// few percent, tail quantiles are too noisy to pin down.
	compareExact(t, want, got)
	comparePerfQuantiles(t, want, got, 0.20, 0.25, 0.5, 0.75)
}

// TestMergeOverlappingUsers splits one trace at its time midpoint, so
// the same users appear in both partials, and checks that Merge
// re-interleaves their histories correctly.
func TestMergeOverlappingUsers(t *testing.T) {
	logs := genLogs(t, workload.Config{Users: 500, PCOnlyUsers: 120, Seed: 7})

	seq := NewAnalyzer(Options{})
	for _, l := range logs {
		seq.Add(l)
	}
	want := runOver(t, seq)

	mid := len(logs) / 2
	a, b := NewAnalyzer(Options{}), NewAnalyzer(Options{})
	for _, l := range logs[:mid] {
		a.Add(l)
	}
	for _, l := range logs[mid:] {
		b.Add(l)
	}
	a.Merge(b)
	got := runOver(t, a)

	compareExact(t, want, got)
	comparePerfQuantiles(t, want, got, 0)
}

// TestReservoirMergeWeighting feeds two reservoirs populations of very
// different sizes and ranges, merges, and checks the combined sample
// still weights each population by how many values it represents.
func TestReservoirMergeWeighting(t *testing.T) {
	big := newReservoir(300, 1)
	rng := newReservoir(0, 42) // RNG only
	for i := 0; i < 20000; i++ {
		big.add(float64(rng.next()>>11) / (1 << 53)) // uniform [0,1)
	}
	small := newReservoir(300, 2)
	for i := 0; i < 5000; i++ {
		small.add(2 + float64(rng.next()>>11)/(1<<53)) // uniform [2,3)
	}

	big.merge(small)
	if big.seen != 25000 {
		t.Fatalf("merged seen = %d, want 25000", big.seen)
	}
	if len(big.data) != 300 {
		t.Fatalf("merged sample size = %d, want 300", len(big.data))
	}
	hi := 0
	for _, x := range big.data {
		if x > 1.5 {
			hi++
		}
	}
	// The [2,3) population is 20% of the total; its share of a uniform
	// 300-sample has stddev ~2.3%, so ±7% is a >3σ band.
	frac := float64(hi) / float64(len(big.data))
	if math.Abs(frac-0.2) > 0.07 {
		t.Errorf("high-population share of merged sample = %.3f, want 0.20 +/- 0.07", frac)
	}
}
