package core

import (
	"fmt"

	"mcloud/internal/dist"
)

// ActivityResult carries the Fig 10 rank-distribution analysis: the
// per-user stored/retrieved file counts, their stretched-exponential
// fits, and the power-law comparison the paper uses to reject a pure
// power law.
type ActivityResult struct {
	StoreCounts    []float64 // per-user stored-file counts (users with >= 1)
	RetrieveCounts []float64

	StoreSE    dist.StretchedExp
	RetrieveSE dist.StretchedExp

	StorePowerLawR2    float64
	RetrievePowerLawR2 float64
}

func (a *Analyzer) activity() (ActivityResult, error) {
	var res ActivityResult
	for _, u := range a.byUser {
		if u.storeFiles > 0 {
			res.StoreCounts = append(res.StoreCounts, float64(u.storeFiles))
		}
		if u.retrFiles > 0 {
			res.RetrieveCounts = append(res.RetrieveCounts, float64(u.retrFiles))
		}
	}
	if len(res.StoreCounts) < 10 || len(res.RetrieveCounts) < 10 {
		return res, fmt.Errorf("too few active users (%d store, %d retrieve)",
			len(res.StoreCounts), len(res.RetrieveCounts))
	}
	var err error
	if res.StoreSE, err = dist.FitStretchedExpRank(res.StoreCounts, 0.05, 1.2); err != nil {
		return res, err
	}
	if res.RetrieveSE, err = dist.FitStretchedExpRank(res.RetrieveCounts, 0.05, 1.2); err != nil {
		return res, err
	}
	if _, res.StorePowerLawR2, err = dist.PowerLawRankR2(res.StoreCounts); err != nil {
		return res, err
	}
	if _, res.RetrievePowerLawR2, err = dist.PowerLawRankR2(res.RetrieveCounts); err != nil {
		return res, err
	}
	return res, nil
}
