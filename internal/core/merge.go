package core

import (
	"mcloud/internal/trace"
)

// Merge folds other into a, so an analysis can shard its input across
// workers and combine the partial states: counters add, per-user
// accumulations union, the window extends to cover both, and sample
// reservoirs merge by weighted re-sampling. other must not be used
// afterwards (its state may be absorbed by reference).
//
// When the input was sharded by user (every user's logs in exactly
// one partial — what ParallelAnalyzer does), the merged analyzer
// reproduces a sequential pass exactly, except for reservoirs that
// overflowed their capacity, which remain uniform samples and agree
// within sampling tolerance.
func (a *Analyzer) Merge(other *Analyzer) {
	if other == nil || other.totalLogs == 0 {
		return
	}
	a.totalLogs += other.totalLogs
	if a.start.IsZero() || other.start.Before(a.start) {
		a.start = other.start
	}
	if other.end.After(a.end) {
		a.end = other.end
	}

	for id, ou := range other.byUser {
		u := a.byUser[id]
		if u == nil {
			a.byUser[id] = ou
			continue
		}
		// The same user in both partials (not the user-sharded case,
		// but Merge stays general): interleave the log history back
		// into time order.
		u.logs = append(u.logs, ou.logs...)
		trace.SortByTime(u.logs)
		u.storeVol += ou.storeVol
		u.retrVol += ou.retrVol
		u.storeFiles += ou.storeFiles
		u.retrFiles += ou.retrFiles
		for d, typ := range ou.devices {
			u.devices[d] = typ
		}
		if ou.firstSeen.Before(u.firstSeen) {
			u.firstSeen = ou.firstSeen
		}
	}

	a.rtts.merge(other.rtts)
	for d, r := range other.chunkUp {
		a.chunkUp[d].merge(r)
	}
	for d, r := range other.chunkDown {
		a.chunkDown[d].merge(r)
	}
	a.swnd.merge(other.swnd)
}

// float returns a uniform [0,1) draw from the reservoir's RNG.
func (r *reservoir) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// merge folds o into r so that r remains a uniform sample of the
// combined underlying population. While the combined samples fit the
// capacity this is plain concatenation — exact, no information lost.
// Past capacity, each output slot draws from r's or o's sample with
// probability proportional to the population each represents
// (weighted re-sampling without replacement, using r's deterministic
// RNG), which keeps every underlying value equally likely to appear.
func (r *reservoir) merge(o *reservoir) {
	if o == nil || o.seen == 0 {
		return
	}
	if r.seen == 0 {
		r.data = append(r.data, o.data...)
		r.seen = o.seen
		return
	}
	if len(r.data)+len(o.data) <= r.cap {
		r.data = append(r.data, o.data...)
		r.seen += o.seen
		return
	}

	shuffle := func(xs []float64) {
		for i := len(xs) - 1; i > 0; i-- {
			j := int(r.next() % uint64(i+1))
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	// Both inputs are uniform samples, so after a shuffle, walking
	// each sequentially is equivalent to repeated uniform draws
	// without replacement.
	A := r.data
	B := append([]float64(nil), o.data...)
	shuffle(A)
	shuffle(B)
	pA := float64(r.seen) / float64(r.seen+o.seen)
	out := make([]float64, 0, r.cap)
	ai, bi := 0, 0
	for len(out) < r.cap {
		takeA := bi >= len(B) || (ai < len(A) && r.float() < pA)
		if takeA {
			out = append(out, A[ai])
			ai++
		} else {
			out = append(out, B[bi])
			bi++
		}
	}
	r.data = out
	r.seen += o.seen
}
