package core

import (
	"fmt"
	"sync"
	"testing"

	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

var benchTrace struct {
	once sync.Once
	logs []trace.Log
}

func benchLogs(b *testing.B) []trace.Log {
	b.Helper()
	benchTrace.once.Do(func() {
		g, err := workload.New(workload.Config{Users: 1000, PCOnlyUsers: 125, Seed: 6})
		if err != nil {
			panic(err)
		}
		benchTrace.logs = trace.Drain(g.Stream())
	})
	return benchTrace.logs
}

// BenchmarkParallelAnalyzer measures the user-sharded analysis fold
// and merge at several worker counts.
func BenchmarkParallelAnalyzer(b *testing.B) {
	logs := benchLogs(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := NewParallelAnalyzer(Options{}, workers)
				for _, l := range logs {
					a.Add(l)
				}
				if got := a.Finish().TotalLogs(); got != int64(len(logs)) {
					b.Fatalf("folded %d logs, want %d", got, len(logs))
				}
			}
		})
	}
}
