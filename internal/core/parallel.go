package core

import (
	"runtime"
	"sync"

	"mcloud/internal/trace"
)

// parallelBatch is how many routed logs accumulate per shard before
// being handed to its worker — large enough that channel traffic is
// negligible next to the per-log fold.
const parallelBatch = 512

// ParallelAnalyzer shards the analysis fold by user across worker
// goroutines: logs route to a worker by a hash of their user ID, each
// worker folds into a private Analyzer, and Finish merges the partial
// states (see Analyzer.Merge). Because one user's logs always land on
// the same worker in arrival order, per-user sequences — sessions,
// gaps, engagement — are identical to a sequential pass.
//
// Add and AddStream must be called from a single goroutine; the
// parallelism is internal.
type ParallelAnalyzer struct {
	workers int
	shards  []*Analyzer
	chans   []chan []trace.Log
	bufs    [][]trace.Log
	wg      sync.WaitGroup
}

// NewParallelAnalyzer returns an analyzer fanning out across the
// given worker count (<= 0 means GOMAXPROCS). One worker degrades to
// a plain sequential Analyzer with no channel hop.
func NewParallelAnalyzer(opts Options, workers int) *ParallelAnalyzer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelAnalyzer{workers: workers}
	if workers == 1 {
		p.shards = []*Analyzer{NewAnalyzer(opts)}
		return p
	}
	for i := 0; i < workers; i++ {
		a := NewAnalyzer(opts)
		ch := make(chan []trace.Log, 4)
		p.shards = append(p.shards, a)
		p.chans = append(p.chans, ch)
		p.bufs = append(p.bufs, make([]trace.Log, 0, parallelBatch))
		p.wg.Add(1)
		go func(a *Analyzer, ch chan []trace.Log) {
			defer p.wg.Done()
			for batch := range ch {
				for _, l := range batch {
					a.Add(l)
				}
			}
		}(a, ch)
	}
	return p
}

// Workers reports the fan-out width.
func (p *ParallelAnalyzer) Workers() int { return p.workers }

func (p *ParallelAnalyzer) route(userID uint64) int {
	// User IDs are typically sequential, so mix before reducing.
	h := userID * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(p.workers))
}

// Add routes one log entry to its user's shard.
func (p *ParallelAnalyzer) Add(l trace.Log) {
	if p.chans == nil {
		p.shards[0].Add(l)
		return
	}
	s := p.route(l.UserID)
	p.bufs[s] = append(p.bufs[s], l)
	if len(p.bufs[s]) == parallelBatch {
		p.chans[s] <- p.bufs[s]
		p.bufs[s] = make([]trace.Log, 0, parallelBatch)
	}
}

// AddStream drains a trace.Stream through Add.
func (p *ParallelAnalyzer) AddStream(s trace.Stream) {
	for {
		l, ok := s.Next()
		if !ok {
			return
		}
		p.Add(l)
	}
}

// Finish flushes the remaining batches, waits for the workers, and
// merges the shard states into one Analyzer ready for Run. The
// ParallelAnalyzer must not be used afterwards.
func (p *ParallelAnalyzer) Finish() *Analyzer {
	if p.chans != nil {
		for i, b := range p.bufs {
			if len(b) > 0 {
				p.chans[i] <- b
			}
			p.bufs[i] = nil
		}
		for _, ch := range p.chans {
			close(ch)
		}
		p.wg.Wait()
		p.chans = nil
	}
	root := p.shards[0]
	for _, sh := range p.shards[1:] {
		root.Merge(sh)
	}
	p.shards = p.shards[:1]
	return root
}
