package core

import (
	"fmt"
	"time"

	"mcloud/internal/randx"
	"mcloud/internal/storage"
)

// CacheStudyConfig parameterizes the paper's web-cache what-if
// (§3.1.4: "it would be necessary to monitor the popularity of
// downloads ... if a handful of popular files dominate, web cache
// proxies can reduce server workload"). The dataset carries no file
// identifiers (the paper's stated limitation), so popularity is an
// assumption made explicit here: object requests follow a Zipf law.
type CacheStudyConfig struct {
	Objects      int       // catalog size (default 2000)
	Requests     int       // download requests to replay (default 50000)
	ZipfExponent float64   // popularity skew (default 1.1)
	ObjectBytes  int       // object size in bytes (default 256 KB)
	CacheFracs   []float64 // cache sizes as fractions of the catalog bytes
	Seed         uint64
}

func (c CacheStudyConfig) withDefaults() CacheStudyConfig {
	if c.Objects <= 0 {
		c.Objects = 2000
	}
	if c.Requests <= 0 {
		c.Requests = 50000
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.1
	}
	if c.ObjectBytes <= 0 {
		c.ObjectBytes = 256 << 10
	}
	if len(c.CacheFracs) == 0 {
		c.CacheFracs = []float64{0.01, 0.05, 0.1, 0.2}
	}
	return c
}

// CachePoint is the outcome for one cache size.
type CachePoint struct {
	CacheFrac   float64
	HitRate     float64
	ByteHitRate float64
}

// CacheStudyResult is the what-if outcome across cache sizes.
type CacheStudyResult struct {
	Config CacheStudyConfig
	Points []CachePoint
}

// RunCacheStudy replays a Zipf-popular download stream through the
// live LRU cache over the chunk store and reports origin offload per
// cache size.
func RunCacheStudy(cfg CacheStudyConfig) (CacheStudyResult, error) {
	cfg = cfg.withDefaults()
	res := CacheStudyResult{Config: cfg}

	// Build the catalog once in a backing store.
	backing := storage.NewMemStore()
	src := randx.Derive(cfg.Seed, "cache-study")
	sums := make([]storage.Sum, cfg.Objects)
	buf := make([]byte, cfg.ObjectBytes)
	for i := range sums {
		content := randx.Derive(cfg.Seed, fmt.Sprintf("obj/%d", i))
		for j := range buf {
			buf[j] = byte(content.Uint64())
		}
		sums[i] = storage.SumBytes(buf)
		if err := backing.Put(sums[i], buf); err != nil {
			return res, err
		}
	}
	catalogBytes := int64(cfg.Objects) * int64(cfg.ObjectBytes)

	for _, frac := range cfg.CacheFracs {
		cache := storage.NewCachedStore(backing, int64(frac*float64(catalogBytes)))
		z := randx.NewZipf(src.Split(), cfg.Objects, cfg.ZipfExponent)
		for i := 0; i < cfg.Requests; i++ {
			if _, err := cache.Get(sums[z.Draw()-1]); err != nil {
				return res, err
			}
		}
		st := cache.CacheStats()
		res.Points = append(res.Points, CachePoint{
			CacheFrac:   frac,
			HitRate:     st.HitRate(),
			ByteHitRate: st.ByteHitRate(),
		})
	}
	return res, nil
}

// TieringStudyConfig parameterizes the f4-style warm-storage what-if
// (§3.2.2 / Table 4: "the cold/warm storage solution can cut the cost
// down significantly" because ~80 % of uploads are never read within
// the week).
type TieringStudyConfig struct {
	Objects     int           // uploaded objects (default 2000)
	ObjectBytes int           // size per object (default 64 KB in-study)
	ReadProb    float64       // probability an object is read during the week (default 0.2, per Fig 9)
	ColdAfter   time.Duration // demotion idle threshold (default 24h)
	Days        int           // horizon (default 7)
	HotPrice    float64       // price per byte-hour (default 1.0)
	ColdPrice   float64       // default 0.4 (f4's ~2.8->2.1 replication-factor saving and cheaper media)
	Seed        uint64
}

func (c TieringStudyConfig) withDefaults() TieringStudyConfig {
	if c.Objects <= 0 {
		c.Objects = 2000
	}
	if c.ObjectBytes <= 0 {
		c.ObjectBytes = 64 << 10
	}
	if c.ReadProb == 0 {
		c.ReadProb = 0.2
	}
	if c.ColdAfter <= 0 {
		c.ColdAfter = 24 * time.Hour
	}
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.HotPrice == 0 {
		c.HotPrice = 1.0
	}
	if c.ColdPrice == 0 {
		c.ColdPrice = 0.4
	}
	return c
}

// TieringStudyResult is the warm-storage what-if outcome.
type TieringStudyResult struct {
	Config       TieringStudyConfig
	Stats        storage.TierStats
	TieredCost   float64
	HotOnlyCost  float64
	Saving       float64 // 1 - tiered/hot-only
	ColdShareEnd float64 // fraction of objects cold at the horizon
}

// RunTieringStudy uploads a population of objects on day 0, replays a
// week in which each object is read with ReadProb (the measured
// never-retrieve rate inverted), migrating daily, and compares the
// storage cost against keeping everything hot.
func RunTieringStudy(cfg TieringStudyConfig) (TieringStudyResult, error) {
	cfg = cfg.withDefaults()
	res := TieringStudyResult{Config: cfg}

	clock := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	ts := storage.NewTieredStore(storage.NewMemStore(), storage.NewMemStore(), cfg.ColdAfter, now)

	src := randx.Derive(cfg.Seed, "tiering-study")
	sums := make([]storage.Sum, cfg.Objects)
	readDay := make([]int, cfg.Objects) // -1 = never read
	buf := make([]byte, cfg.ObjectBytes)
	for i := range sums {
		content := randx.Derive(cfg.Seed, fmt.Sprintf("tierobj/%d", i))
		for j := range buf {
			buf[j] = byte(content.Uint64())
		}
		sums[i] = storage.SumBytes(buf)
		if err := ts.Put(sums[i], buf); err != nil {
			return res, err
		}
		readDay[i] = -1
		if src.Bool(cfg.ReadProb) {
			readDay[i] = 1 + src.Intn(cfg.Days-1)
		}
	}

	for day := 1; day <= cfg.Days; day++ {
		ts.AccrueOccupancy(24 * time.Hour)
		clock = clock.Add(24 * time.Hour)
		if _, err := ts.Migrate(); err != nil {
			return res, err
		}
		for i := range sums {
			if readDay[i] == day {
				if _, err := ts.Get(sums[i]); err != nil {
					return res, err
				}
			}
		}
	}

	st := ts.TierStats()
	res.Stats = st
	res.TieredCost = st.Cost(cfg.HotPrice, cfg.ColdPrice)
	res.HotOnlyCost = st.HotOnlyCost(cfg.HotPrice)
	if res.HotOnlyCost > 0 {
		res.Saving = 1 - res.TieredCost/res.HotOnlyCost
	}
	if cfg.Objects > 0 {
		res.ColdShareEnd = float64(int64(st.Demotions)-int64(st.Promotions)) / float64(cfg.Objects)
	}
	return res, nil
}
