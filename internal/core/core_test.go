package core

import (
	"math"
	"testing"
	"time"

	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

// analyzed runs the full pipeline once over a shared synthetic
// dataset; generation and analysis are deterministic.
var analyzed = func() Results {
	g, err := workload.New(workload.Config{Users: 3000, PCOnlyUsers: 1000, Seed: 7})
	if err != nil {
		panic(err)
	}
	a := NewAnalyzer(Options{Start: g.Config().Start, Days: g.Config().Days})
	a.AddStream(g.Stream())
	res, err := a.Run()
	if err != nil {
		panic(err)
	}
	return res
}()

func TestWorkloadTotalsConsistent(t *testing.T) {
	w := analyzed.Workload
	if w.TotalStoreVol <= 0 || w.TotalRetrVol <= 0 {
		t.Fatal("zero volumes")
	}
	var sv, rv int64
	for _, h := range w.Hours {
		sv += h.StoreVol
		rv += h.RetrVol
	}
	if sv != w.TotalStoreVol || rv != w.TotalRetrVol {
		t.Error("hourly series does not sum to totals")
	}
}

func TestFigure1Shape(t *testing.T) {
	w := analyzed.Workload
	// Retrievals contribute more volume; stored files outnumber
	// retrieved files about 2:1 (§2.4).
	if w.VolumeRatio() <= 1 {
		t.Errorf("retrieve/store volume ratio = %.2f, want > 1", w.VolumeRatio())
	}
	if r := w.FileRatio(); r < 1.8 || r > 3.5 {
		t.Errorf("stored/retrieved file ratio = %.2f, want ~2-3", r)
	}
	// Diurnal: late-evening peak, clear peak-to-trough swing.
	if w.PeakHourOfDay < 19 && w.PeakHourOfDay > 1 {
		t.Errorf("peak hour = %d, want late evening", w.PeakHourOfDay)
	}
	if w.PeakToTrough < 2 {
		t.Errorf("peak/trough = %.2f, want > 2", w.PeakToTrough)
	}
}

func TestFigure3GMM(t *testing.T) {
	io := analyzed.InterOp
	if io.Gaps < 1000 {
		t.Fatalf("only %d gaps", io.Gaps)
	}
	inSess := io.InSessionMeanSec()
	interSess := io.InterSessionMeanSec()
	if inSess < 0.5 || inSess > 25 {
		t.Errorf("in-session mean = %.2f s, want seconds scale (paper: ~10 s)", inSess)
	}
	if interSess < 10000 || interSess > 400000 {
		t.Errorf("inter-session mean = %.0f s, want ~1 day (paper: ~86400 s)", interSess)
	}
	// The 1-hour mark must fall between the components and the
	// empirical valley should surround it.
	if !(inSess < 3600 && 3600 < interSess) {
		t.Error("τ = 1 h not between the mixture components")
	}
	if io.ValleySec < 300 || io.ValleySec > 5*3600 {
		t.Errorf("histogram valley = %.0f s, want within [5 min, 5 h] around τ", io.ValleySec)
	}
	if io.CrossoverSec < 60 || io.CrossoverSec > 12*3600 {
		t.Errorf("component crossover = %.0f s, unreasonable", io.CrossoverSec)
	}
	if io.TauSec != 3600 {
		t.Errorf("TauSec = %v, want 3600", io.TauSec)
	}
}

func TestSessionClassification(t *testing.T) {
	s := analyzed.Sessions
	if s.StoreOnlyFrac < 0.60 || s.StoreOnlyFrac > 0.76 {
		t.Errorf("store-only = %.3f, want ~0.68", s.StoreOnlyFrac)
	}
	if s.RetrieveOnlyFrac < 0.22 || s.RetrieveOnlyFrac > 0.38 {
		t.Errorf("retrieve-only = %.3f, want ~0.30", s.RetrieveOnlyFrac)
	}
	if s.MixedFrac > 0.06 {
		t.Errorf("mixed = %.3f, want ~0.02", s.MixedFrac)
	}
	total := s.StoreOnlyFrac + s.RetrieveOnlyFrac + s.MixedFrac
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("class fractions sum to %v", total)
	}
}

func TestFigure4Burstiness(t *testing.T) {
	s := analyzed.Sessions
	if p := s.BurstAll.P(0.1); p < 0.6 {
		t.Errorf("P(norm op time < 0.1) = %.3f, want >= 0.6 (paper: >0.8)", p)
	}
	// More files => more front-loaded.
	if s.BurstOver20.P(0.1) < s.BurstAll.P(0.1) {
		t.Error(">20-op sessions should be at least as front-loaded as all sessions")
	}
	if med := s.BurstOver20.Quantile(0.5); med > 0.05 {
		t.Errorf(">20-op median normalized op time = %.3f, want < 0.05 (paper: ~0.03)", med)
	}
}

func TestFigure5SessionSize(t *testing.T) {
	s := analyzed.Sessions
	if s.POneOp < 0.30 || s.POneOp > 0.60 {
		t.Errorf("P(one op) = %.3f, want ~0.4", s.POneOp)
	}
	if s.POver20Ops < 0.05 || s.POver20Ops > 0.18 {
		t.Errorf("P(>20 ops) = %.3f, want ~0.1", s.POver20Ops)
	}
	// Fig 5b: store sessions scale linearly at ~1.5 MB per file.
	if s.StoreSlopeMB < 0.8 || s.StoreSlopeMB > 2.6 {
		t.Errorf("store volume slope = %.2f MB/file, want ~1.5", s.StoreSlopeMB)
	}
	// Fig 5c: single-file retrieve sessions average tens of MB.
	if s.OneFileRetrieveMeanMB < 25 || s.OneFileRetrieveMeanMB > 130 {
		t.Errorf("1-file retrieve mean = %.1f MB, want ~70", s.OneFileRetrieveMeanMB)
	}
	// The retrieve-session average dwarfs the median in the low bins
	// (heavy tail, "average higher than the 75th percentile" shape).
	for _, b := range analyzed.Sessions.RetrieveBins {
		if b.Files == 1 && b.N > 50 {
			if b.MeanMB < b.MedMB {
				t.Error("1-file retrieve mean below median — tail missing")
			}
			break
		}
	}
}

func TestFigure6Table2(t *testing.T) {
	f := analyzed.FileSize
	if len(f.StoreMixture.Components) < 2 || len(f.RetrieveMixture.Components) < 3 {
		t.Fatalf("component counts: store %d, retrieve %d",
			len(f.StoreMixture.Components), len(f.RetrieveMixture.Components))
	}
	// Store: photo-scale mass >= 0.85 near 1.5 MB.
	var wSmall, mSmall float64
	for _, c := range f.StoreMixture.Components {
		if c.Mu < 3 {
			wSmall += c.Alpha
			mSmall += c.Alpha * c.Mu
		}
	}
	if wSmall < 0.80 {
		t.Errorf("store small-scale weight = %.3f, want >= 0.80 (paper: 0.91)", wSmall)
	}
	if m := mSmall / wSmall; m < 0.9 || m > 2.2 {
		t.Errorf("store small-scale mean = %.2f MB, want ~1.5", m)
	}
	// Retrieve: a tail component near 150 MB with weight ~0.28.
	rt := f.RetrieveMixture.Components[len(f.RetrieveMixture.Components)-1]
	if rt.Mu < 90 || rt.Mu > 260 {
		t.Errorf("retrieve tail µ = %.1f, want ~147", rt.Mu)
	}
	if rt.Alpha < 0.14 || rt.Alpha > 0.42 {
		t.Errorf("retrieve tail α = %.3f, want ~0.28", rt.Alpha)
	}
	// Chi-square: the paper's fits pass at 5%; ours should not be
	// wildly rejected. (With tens of thousands of sessions GOF is
	// strict; require it not to fail catastrophically.)
	if f.StoreGOF.Stat <= 0 || f.RetrieveGOF.Stat <= 0 {
		t.Error("GOF statistics missing")
	}
}

func TestTable3(t *testing.T) {
	u := analyzed.Usage
	mo := map[string]UserClassRow{}
	for class, cats := range u.Table3 {
		mo[class] = cats["mobile-only"]
	}
	if f := mo["upload-only"].UserFrac; f < 0.40 || f > 0.62 {
		t.Errorf("mobile-only upload-only share = %.3f, want ~0.515", f)
	}
	if f := mo["download-only"].UserFrac; f < 0.10 || f > 0.26 {
		t.Errorf("mobile-only download-only share = %.3f, want ~0.173", f)
	}
	if f := mo["occasional"].UserFrac; f < 0.15 || f > 0.32 {
		t.Errorf("mobile-only occasional share = %.3f, want ~0.239", f)
	}
	if f := mo["mixed"].UserFrac; f < 0.03 || f > 0.15 {
		t.Errorf("mobile-only mixed share = %.3f, want ~0.072", f)
	}
	// Upload-only users generate the bulk of stored volume (paper:
	// 86.6 %).
	if f := mo["upload-only"].StoreFrac; f < 0.70 {
		t.Errorf("upload-only stored-volume share = %.3f, want > 0.7", f)
	}
	// PC users spread more evenly: their upload-only share is lower
	// than mobile's.
	pcUp := u.Table3["upload-only"]["pc-only"].UserFrac
	if pcUp >= mo["upload-only"].UserFrac {
		t.Errorf("pc-only upload share (%.3f) should be below mobile-only (%.3f)",
			pcUp, mo["upload-only"].UserFrac)
	}
	// Mobile+PC users are more likely mixed than mobile-only users.
	mpMixed := u.Table3["mixed"]["mobile-and-pc"].UserFrac
	if mpMixed <= mo["mixed"].UserFrac {
		t.Errorf("mobile+pc mixed share (%.3f) should exceed mobile-only (%.3f)",
			mpMixed, mo["mixed"].UserFrac)
	}
}

func TestFigure7Ratios(t *testing.T) {
	u := analyzed.Usage
	if len(u.RatiosMobileOnly) == 0 || len(u.RatiosPCOnly) == 0 {
		t.Fatal("missing ratio samples")
	}
	frac := func(ratios []float64, pred func(float64) bool) float64 {
		n := 0
		for _, r := range ratios {
			if pred(r) {
				n++
			}
		}
		return float64(n) / float64(len(ratios))
	}
	// Storage-dominant (ratio > 1e5 → log10 > 5) is more common among
	// mobile-only users than PC-only users.
	moUp := frac(u.RatiosMobileOnly, func(r float64) bool { return r > 5 })
	pcUp := frac(u.RatiosPCOnly, func(r float64) bool { return r > 5 })
	if moUp <= pcUp {
		t.Errorf("mobile storage-dominance (%.3f) should exceed PC (%.3f)", moUp, pcUp)
	}
	// Multi-device mobile users are less storage-dominant than
	// single-device ones (Fig 7b).
	oneDev := frac(u.RatiosByDevices[1], func(r float64) bool { return r > 5 })
	multi := append(append([]float64{}, u.RatiosByDevices[2]...), u.RatiosByDevices[3]...)
	if len(multi) > 30 {
		multiUp := frac(multi, func(r float64) bool { return r > 5 })
		if multiUp >= oneDev {
			t.Errorf("multi-device storage-dominance (%.3f) should be below single-device (%.3f)", multiUp, oneDev)
		}
	}
}

func TestFigure8Engagement(t *testing.T) {
	e := analyzed.Engagement
	if e.Day0Users[StratumOneDevice] < 50 {
		t.Fatalf("too few day-0 single-device users: %d", e.Day0Users[StratumOneDevice])
	}
	// About half of single-device users never return.
	nr := e.NeverReturn[StratumOneDevice]
	if nr < 0.40 || nr > 0.72 {
		t.Errorf("1-device never-return = %.3f, want ~0.5", nr)
	}
	// Multi-device and mobile+PC users return far more.
	if v := e.NeverReturn[StratumMultiDevice]; v >= nr {
		t.Errorf("multi-device never-return (%.3f) should be below 1-device (%.3f)", v, nr)
	}
	if v := e.NeverReturn[StratumMobileAndPC]; v >= nr {
		t.Errorf("mobile+pc never-return (%.3f) should be below 1-device (%.3f)", v, nr)
	}
	// Bimodal: among returners, day 1 is the modal return day.
	rd := e.ReturnDay[StratumOneDevice]
	for d := 2; d < len(rd); d++ {
		if rd[d] > rd[1] {
			t.Errorf("return-day %d (%.3f) exceeds day 1 (%.3f) — bimodality lost", d, rd[d], rd[1])
		}
	}
}

func TestFigure9RetrievalAfterUpload(t *testing.T) {
	e := analyzed.Engagement
	for _, s := range []string{StratumOneDevice, StratumMultiDevice, StratumThreePlus} {
		if e.Day0Uploaders[s] < 20 {
			continue
		}
		if nr := e.NeverRetrieve[s]; nr < 0.80 {
			t.Errorf("%s never-retrieve = %.3f, want > 0.80", s, nr)
		}
	}
	// Mobile+PC users retrieve their uploads far more often,
	// especially same-day.
	mp := e.RetrievalByDay[StratumMobileAndPC]
	one := e.RetrievalByDay[StratumOneDevice]
	if mp == nil || one == nil {
		t.Fatal("missing retrieval curves")
	}
	last := len(mp) - 1
	if mp[last] <= one[last] {
		t.Errorf("mobile+pc cumulative retrieval (%.3f) should exceed 1-device (%.3f)", mp[last], one[last])
	}
	if mp[0] <= one[0] {
		t.Errorf("mobile+pc day-0 retrieval (%.3f) should exceed 1-device (%.3f)", mp[0], one[0])
	}
}

func TestFigure10Activity(t *testing.T) {
	act := analyzed.Activity
	if act.StoreSE.C < 0.12 || act.StoreSE.C > 0.45 {
		t.Errorf("store SE c = %.3f, want ~0.2", act.StoreSE.C)
	}
	if act.RetrieveSE.C < 0.04 || act.RetrieveSE.C > 0.30 {
		t.Errorf("retrieve SE c = %.3f, want ~0.15", act.RetrieveSE.C)
	}
	if act.RetrieveSE.C >= act.StoreSE.C {
		t.Error("retrieval should be more skewed (smaller c) than storage")
	}
	if act.StoreSE.R2 < 0.95 {
		t.Errorf("store SE R² = %.4f, want > 0.95 (paper: 0.999)", act.StoreSE.R2)
	}
	if act.StoreSE.R2 <= act.StorePowerLawR2 {
		t.Errorf("SE fit (R²=%.4f) should beat power law (R²=%.4f)",
			act.StoreSE.R2, act.StorePowerLawR2)
	}
}

func TestFigure12ChunkTimes(t *testing.T) {
	p := analyzed.Perf
	am := p.MedianUpload(trace.Android)
	im := p.MedianUpload(trace.IOS)
	if am < 3200*time.Millisecond || am > 5200*time.Millisecond {
		t.Errorf("Android median upload = %v, want ~4.1 s", am)
	}
	if im < 1100*time.Millisecond || im > 2300*time.Millisecond {
		t.Errorf("iOS median upload = %v, want ~1.6 s", im)
	}
	// Downloads are faster than uploads and the device gap narrows.
	ad := p.MedianDownload(trace.Android)
	if ad >= am {
		t.Errorf("Android download median (%v) should be below upload (%v)", ad, am)
	}
}

func TestFigure14RTT(t *testing.T) {
	p := analyzed.Perf
	med := time.Duration(p.RTT.Quantile(0.5) * float64(time.Second))
	if med < 60*time.Millisecond || med > 170*time.Millisecond {
		t.Errorf("median RTT = %v, want ~100 ms", med)
	}
	q95 := p.RTT.Quantile(0.95)
	if q95 < 3*p.RTT.Quantile(0.5) {
		t.Errorf("RTT tail too light: q95/q50 = %.2f", q95/p.RTT.Quantile(0.5))
	}
}

func TestFigure15SWnd(t *testing.T) {
	// The swnd estimate should be bounded by the 64 KB receive window
	// for the bulk of storage chunks — concentration below 64 KB.
	p := analyzed.Perf
	if p.SWnd.N() == 0 {
		t.Fatal("no swnd samples")
	}
	below := p.SWnd.P(66 * 1024)
	if below < 0.85 {
		t.Errorf("P(swnd <= 64 KB) = %.3f, want most of the mass under the clamp", below)
	}
}

func TestFigure16IdleStudy(t *testing.T) {
	res, err := RunIdleTimeStudy(IdleTimeConfig{Flows: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	as := res.Classes["android/storage"]
	is := res.Classes["ios/storage"]
	// Fig 16c: ~60 % Android vs ~18 % iOS restart fractions.
	if as.RestartFrac < 0.48 || as.RestartFrac > 0.72 {
		t.Errorf("android/storage restart fraction = %.3f, want ~0.60", as.RestartFrac)
	}
	if is.RestartFrac < 0.08 || is.RestartFrac > 0.30 {
		t.Errorf("ios/storage restart fraction = %.3f, want ~0.18", is.RestartFrac)
	}
	// Fig 16a: Tsrv ≈ 100 ms for both; Android Tclt ≈ +90 ms.
	for _, cls := range []string{"android/storage", "ios/storage", "android/retrieval", "ios/retrieval"} {
		med := res.Classes[cls].Tsrv.Quantile(0.5)
		if med < 0.06 || med > 0.16 {
			t.Errorf("%s median Tsrv = %.3f s, want ~0.1", cls, med)
		}
	}
	aClt := as.Tclt.Quantile(0.5)
	iClt := is.Tclt.Quantile(0.5)
	if aClt-iClt < 0.05 {
		t.Errorf("Android storage Tclt (%.3f) should exceed iOS (%.3f) by ~90 ms", aClt, iClt)
	}
	// Fig 16b: Android retrieval Tclt has a heavy tail (~1 s at q90 vs
	// ~0.1 s for iOS).
	ar := res.Classes["android/retrieval"]
	ir := res.Classes["ios/retrieval"]
	if q := ar.Tclt.Quantile(0.9); q < 0.5 {
		t.Errorf("android/retrieval q90 Tclt = %.3f s, want ~1", q)
	}
	if q := ir.Tclt.Quantile(0.9); q > 0.4 {
		t.Errorf("ios/retrieval q90 Tclt = %.3f s, want ~0.1-0.2", q)
	}
	// Fig 13: the sample flows exist and the Android one restarts.
	if _, ok := res.SampleFlows["android"]; !ok {
		t.Error("missing android sample flow")
	}
	// Android slower overall (Fig 12 confirmation from the simulator).
	if as.MedianChunkTime <= is.MedianChunkTime {
		t.Errorf("android median chunk (%v) should exceed ios (%v)",
			as.MedianChunkTime, is.MedianChunkTime)
	}
}

func TestIdleStudyWhatIfs(t *testing.T) {
	base, err := RunIdleTimeStudy(IdleTimeConfig{Flows: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	noSSAI, err := RunIdleTimeStudy(IdleTimeConfig{Flows: 30, Seed: 9, NoSSAI: true})
	if err != nil {
		t.Fatal(err)
	}
	bigChunks, err := RunIdleTimeStudy(IdleTimeConfig{Flows: 30, Seed: 9, ChunkSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := RunIdleTimeStudy(IdleTimeConfig{Flows: 30, Seed: 9, WindowScaling: true})
	if err != nil {
		t.Fatal(err)
	}
	key := "android/storage"
	if noSSAI.Classes[key].RestartFrac != 0 {
		t.Error("disabling SSAI should eliminate restarts")
	}
	if noSSAI.Classes[key].MeanThroughput <= base.Classes[key].MeanThroughput {
		t.Error("disabling SSAI should raise Android storage throughput")
	}
	if bigChunks.Classes[key].MeanThroughput <= base.Classes[key].MeanThroughput {
		t.Error("2 MB chunks should raise Android storage throughput (fewer idles)")
	}
	if scaled.Classes[key].MeanThroughput <= base.Classes[key].MeanThroughput {
		t.Error("window scaling should raise storage throughput")
	}
}

func TestAnalyzerCounts(t *testing.T) {
	if analyzed.Logs == 0 || analyzed.Users != 4000 {
		t.Errorf("logs=%d users=%d, want all 4000 users active", analyzed.Logs, analyzed.Users)
	}
}

func TestReservoir(t *testing.T) {
	r := newReservoir(100, 1)
	for i := 0; i < 10000; i++ {
		r.add(float64(i))
	}
	if len(r.values()) != 100 {
		t.Fatalf("reservoir holds %d, want 100", len(r.values()))
	}
	// Uniformity: the mean of the sample should be near 5000.
	mean := 0.0
	for _, v := range r.values() {
		mean += v
	}
	mean /= 100
	if mean < 3500 || mean > 6500 {
		t.Errorf("reservoir mean = %.0f, want ~5000", mean)
	}
	if r.quantile(0.5) <= 0 {
		t.Error("median should be positive")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tau != time.Hour || o.Days != 7 || o.MinGapSeconds != 1 || o.MaxSamples <= 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
