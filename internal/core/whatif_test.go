package core

import (
	"testing"
	"time"
)

func TestCacheStudyMonotoneInCacheSize(t *testing.T) {
	res, err := RunCacheStudy(CacheStudyConfig{
		Objects:     500,
		Requests:    20000,
		ObjectBytes: 8 << 10,
		CacheFracs:  []float64{0.02, 0.1, 0.3},
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].HitRate < res.Points[i-1].HitRate {
			t.Errorf("hit rate not monotone in cache size: %v", res.Points)
		}
	}
	// With Zipf popularity, even a 10% cache offloads a large share.
	if res.Points[1].HitRate < 0.4 {
		t.Errorf("10%% cache hit rate = %.3f, want substantial offload", res.Points[1].HitRate)
	}
	// Hit and byte-hit rates agree for uniform object sizes.
	for _, p := range res.Points {
		if diff := p.HitRate - p.ByteHitRate; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("hit (%v) and byte-hit (%v) rates should match for equal sizes", p.HitRate, p.ByteHitRate)
		}
	}
}

func TestCacheStudyLessSkewLessBenefit(t *testing.T) {
	skewed, err := RunCacheStudy(CacheStudyConfig{
		Objects: 500, Requests: 15000, ObjectBytes: 4 << 10,
		ZipfExponent: 1.3, CacheFracs: []float64{0.05}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := RunCacheStudy(CacheStudyConfig{
		Objects: 500, Requests: 15000, ObjectBytes: 4 << 10,
		ZipfExponent: 0.4, CacheFracs: []float64{0.05}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Points[0].HitRate <= flat.Points[0].HitRate {
		t.Errorf("skewed popularity (%.3f) should beat flat (%.3f)",
			skewed.Points[0].HitRate, flat.Points[0].HitRate)
	}
}

func TestTieringStudySavesCost(t *testing.T) {
	res, err := RunTieringStudy(TieringStudyConfig{
		Objects: 800, ObjectBytes: 16 << 10,
		ReadProb: 0.2, // Fig 9: ~80% of uploads never retrieved in-week
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saving <= 0.2 {
		t.Errorf("tiering saving = %.3f, want substantial for a backup workload", res.Saving)
	}
	if res.TieredCost >= res.HotOnlyCost {
		t.Error("tiered cost should be below hot-only")
	}
	st := res.Stats
	if st.Demotions == 0 {
		t.Error("no demotions happened")
	}
	// Reads promote: some promotions should occur with ReadProb 0.2.
	if st.Promotions == 0 {
		t.Error("no promotions despite reads")
	}
	if res.ColdShareEnd < 0.5 {
		t.Errorf("cold share at horizon = %.3f, want most objects cold", res.ColdShareEnd)
	}
}

func TestTieringStudyHighReadRateLessSaving(t *testing.T) {
	cold, err := RunTieringStudy(TieringStudyConfig{Objects: 400, ReadProb: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := RunTieringStudy(TieringStudyConfig{Objects: 400, ReadProb: 0.9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Saving >= cold.Saving {
		t.Errorf("frequently-read data (saving %.3f) should benefit less than cold data (%.3f)",
			hot.Saving, cold.Saving)
	}
}

func TestTieringStudyDefaults(t *testing.T) {
	cfg := TieringStudyConfig{}.withDefaults()
	if cfg.Objects == 0 || cfg.ColdAfter != 24*time.Hour || cfg.ColdPrice >= cfg.HotPrice {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}
