package core

import (
	"time"

	"mcloud/internal/dist"
	"mcloud/internal/tcpsim"
	"mcloud/internal/trace"
)

// PerfResult carries the log-derived performance figures (Fig 12, 14,
// 15). The packet-level figures (13, 16) come from IdleTimeStudy,
// which drives the tcpsim substrate directly.
type PerfResult struct {
	// Fig 12: chunk transfer time CDFs (seconds) for full chunks.
	UploadTime   map[trace.DeviceType]*dist.ECDF
	DownloadTime map[trace.DeviceType]*dist.ECDF

	// Fig 14: RTT sample (seconds).
	RTT *dist.ECDF

	// Fig 15: estimated average sending window for storage flows
	// (bytes), swnd = reqsize * RTT / ttran.
	SWnd *dist.ECDF

	// UploadGapKS is the two-sample Kolmogorov-Smirnov test between
	// the Android and iOS upload-time samples: the Fig 12 gap should
	// be statistically unambiguous (tiny p-value).
	UploadGapKS dist.KSResult
}

// MedianUpload returns the median chunk upload time for a device.
func (p PerfResult) MedianUpload(d trace.DeviceType) time.Duration {
	e := p.UploadTime[d]
	if e == nil || e.N() == 0 {
		return 0
	}
	return time.Duration(e.Quantile(0.5) * float64(time.Second))
}

// MedianDownload returns the median chunk download time for a device.
func (p PerfResult) MedianDownload(d trace.DeviceType) time.Duration {
	e := p.DownloadTime[d]
	if e == nil || e.N() == 0 {
		return 0
	}
	return time.Duration(e.Quantile(0.5) * float64(time.Second))
}

func (a *Analyzer) perf() PerfResult {
	res := PerfResult{
		UploadTime:   map[trace.DeviceType]*dist.ECDF{},
		DownloadTime: map[trace.DeviceType]*dist.ECDF{},
	}
	for dev, r := range a.chunkUp {
		res.UploadTime[dev] = dist.NewECDF(r.values())
	}
	for dev, r := range a.chunkDown {
		res.DownloadTime[dev] = dist.NewECDF(r.values())
	}
	res.RTT = dist.NewECDF(a.rtts.values())
	res.SWnd = dist.NewECDF(a.swnd.values())
	if ks, err := dist.KSTwoSample(a.chunkUp[trace.Android].values(), a.chunkUp[trace.IOS].values()); err == nil {
		res.UploadGapKS = ks
	}
	return res
}

// IdleTimeConfig parameterizes the Fig 13/16 packet-level study, which
// replays upload and download flows through the TCP simulator for both
// device profiles (substituting for the paper's 40,386 captured
// flows and the authors' lab experiments).
type IdleTimeConfig struct {
	Flows     int           // flows per device/direction (default 200)
	FileSize  int64         // bytes per flow (default 10 MB)
	ChunkSize int64         // default 512 KB
	RTT       time.Duration // default 100 ms
	Seed      uint64
	// NoSSAI disables slow-start restarts (the §4.3 what-if).
	NoSSAI bool
	// WindowScaling lifts the server's 64 KB clamp (the §4.3 what-if).
	WindowScaling bool
}

func (c IdleTimeConfig) withDefaults() IdleTimeConfig {
	if c.Flows <= 0 {
		c.Flows = 200
	}
	if c.FileSize <= 0 {
		c.FileSize = 10 << 20
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 512 << 10
	}
	if c.RTT <= 0 {
		c.RTT = 100 * time.Millisecond
	}
	return c
}

// FlowClassStats summarizes one device × direction class (Fig 16).
type FlowClassStats struct {
	Tsrv        *dist.ECDF // seconds
	Tclt        *dist.ECDF // seconds
	IdleOverRTO *dist.ECDF
	// RestartFrac is the fraction of inter-chunk idles that exceeded
	// the RTO and restarted slow start.
	RestartFrac float64
	// MedianChunkTime is the median chunk transfer time (Fig 12 from
	// the simulator side).
	MedianChunkTime time.Duration
	// MeanThroughput is the average goodput across flows, bytes/sec.
	MeanThroughput float64
}

// IdleTimeResult is the Fig 13/16 study output.
type IdleTimeResult struct {
	// Classes maps "android"/"ios" × "storage"/"retrieval".
	Classes map[string]FlowClassStats
	// SampleFlows holds one representative storage flow per device for
	// Fig 13 (sequence number and inflight over time).
	SampleFlows map[string]tcpsim.FlowResult
}

// RunIdleTimeStudy replays flows through the simulator and dissects
// the inter-chunk idle time exactly as §4.2 does with packet traces.
func RunIdleTimeStudy(cfg IdleTimeConfig) (IdleTimeResult, error) {
	cfg = cfg.withDefaults()
	res := IdleTimeResult{
		Classes:     map[string]FlowClassStats{},
		SampleFlows: map[string]tcpsim.FlowResult{},
	}
	server := tcpsim.DefaultServer
	server.WindowScaling = cfg.WindowScaling

	for _, dev := range []tcpsim.DeviceProfile{tcpsim.AndroidProfile, tcpsim.IOSProfile} {
		for _, dir := range []string{"storage", "retrieval"} {
			var tsrv, tclt, ratios, chunkTimes []float64
			var thr float64
			restarts, gaps := 0, 0
			for i := 0; i < cfg.Flows; i++ {
				tc := tcpsim.TransferConfig{
					Device:    dev,
					Server:    server,
					FileSize:  cfg.FileSize,
					ChunkSize: cfg.ChunkSize,
					RTT:       cfg.RTT,
					NoSSAI:    cfg.NoSSAI,
					Seed:      cfg.Seed + uint64(i)*7919,
				}
				var tr tcpsim.TransferResult
				var err error
				if dir == "storage" {
					tr, err = tcpsim.SimulateUpload(tc)
				} else {
					tr, err = tcpsim.SimulateDownload(tc)
				}
				if err != nil {
					return res, err
				}
				for _, g := range tr.Gaps {
					tsrv = append(tsrv, g.Tsrv.Seconds())
					tclt = append(tclt, g.Tclt.Seconds())
				}
				for ci, c := range tr.Flow.Chunks {
					chunkTimes = append(chunkTimes, c.TransferTime.Seconds())
					if ci > 0 {
						gaps++
						ratios = append(ratios, c.IdleOverRTO)
						if c.Restarted {
							restarts++
						}
					}
				}
				thr += tr.Flow.Throughput()
				if i == 0 && dir == "storage" {
					res.SampleFlows[dev.Name] = tr.Flow
				}
			}
			st := FlowClassStats{
				Tsrv:        dist.NewECDF(tsrv),
				Tclt:        dist.NewECDF(tclt),
				IdleOverRTO: dist.NewECDF(ratios),
			}
			if gaps > 0 {
				st.RestartFrac = float64(restarts) / float64(gaps)
			}
			if len(chunkTimes) > 0 {
				st.MedianChunkTime = time.Duration(dist.Median(dist.SortedCopy(chunkTimes)) * float64(time.Second))
			}
			st.MeanThroughput = thr / float64(cfg.Flows)
			res.Classes[dev.Name+"/"+dir] = st
		}
	}
	return res, nil
}
