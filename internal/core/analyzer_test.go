package core

import (
	"testing"
	"time"

	"mcloud/internal/trace"
	"mcloud/internal/workload"
)

func TestRunFailsOnEmptyInput(t *testing.T) {
	a := NewAnalyzer(Options{})
	if _, err := a.Run(); err == nil {
		t.Error("Run on an empty analyzer should fail (no gaps to fit)")
	}
}

func TestRunWarnsOnTinyInput(t *testing.T) {
	a := NewAnalyzer(Options{})
	base := time.Date(2015, 8, 3, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		a.Add(trace.Log{
			Time:   base.Add(time.Duration(i) * time.Minute),
			UserID: 1,
			Device: trace.Android,
			Type:   trace.FileStore,
		})
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("tiny input should degrade gracefully, got %v", err)
	}
	if len(res.Warnings) == 0 {
		t.Error("expected model-fit warnings on tiny input")
	}
	if res.InterOp.Fitted() {
		t.Error("mixture should not be fitted on 5 operations")
	}
	if res.InterOp.InSessionMeanSec() != 0 {
		t.Error("unfitted accessor should return 0")
	}
	// Session statistics still work.
	if res.Sessions.Stats.Total == 0 {
		t.Error("session analysis should still run")
	}
}

func TestAnalyzerTracksWindow(t *testing.T) {
	a := NewAnalyzer(Options{})
	base := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	a.Add(trace.Log{Time: base.Add(time.Hour), UserID: 1, Type: trace.FileStore})
	a.Add(trace.Log{Time: base, UserID: 1, Type: trace.FileStore})
	a.Add(trace.Log{Time: base.Add(3 * time.Hour), UserID: 2, Type: trace.FileRetrieve})
	if a.TotalLogs() != 3 || a.Users() != 2 {
		t.Errorf("logs=%d users=%d", a.TotalLogs(), a.Users())
	}
	if !a.anchorStart().Equal(base) {
		t.Errorf("anchor = %v, want first log time", a.anchorStart())
	}
}

func TestAnalyzerExplicitStartOverridesAnchor(t *testing.T) {
	start := time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC)
	a := NewAnalyzer(Options{Start: start})
	a.Add(trace.Log{Time: start.Add(50 * time.Hour), UserID: 1, Type: trace.FileStore})
	if !a.anchorStart().Equal(start) {
		t.Error("explicit start ignored")
	}
}

func TestUserCategoryOverride(t *testing.T) {
	// Force every user into the mobile-and-pc category and check the
	// Table 3 grouping follows the override rather than the devices.
	g, err := workload.New(workload.Config{Users: 300, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(Options{
		Start: g.Config().Start,
		Days:  g.Config().Days,
		UserCategory: func(uint64) (bool, bool) {
			return true, true // everyone mobile+pc
		},
	})
	a.AddStream(g.Stream())
	res := a.usage()
	total := 0
	for _, row := range res.Table3 {
		total += row["mobile-and-pc"].Users
		if row["mobile-only"].Users != 0 || row["pc-only"].Users != 0 {
			t.Error("category override leaked users into other groups")
		}
	}
	if total != 300 {
		t.Errorf("categorized %d users, want 300", total)
	}
}

func TestClassifyVolumeThresholds(t *testing.T) {
	cases := []struct {
		store, retr int64
		want        string
	}{
		{0, 0, "occasional"},
		{1 << 19, 1 << 18, "occasional"}, // < 1 MB total
		{100 << 20, 0, "upload-only"},    // ratio -> +inf
		{0, 100 << 20, "download-only"},  // ratio -> 0
		{50 << 20, 50 << 20, "mixed"},
		{200 << 20, 1 << 10, "mixed"}, // ratio ~2e5? check below
	}
	for i, c := range cases[:5] {
		if got := classifyVolume(c.store, c.retr); got != c.want {
			t.Errorf("case %d: classify(%d, %d) = %s, want %s", i, c.store, c.retr, got, c.want)
		}
	}
	// 200 MB vs 1 KB: ratio ~2e5 > 1e5 -> upload-only.
	if got := classifyVolume(200<<20, 1<<10); got != "upload-only" {
		t.Errorf("borderline ratio: got %s, want upload-only", got)
	}
}

func TestPerfFiltersProxiedAndPC(t *testing.T) {
	a := NewAnalyzer(Options{})
	base := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	mk := func(dev trace.DeviceType, proxied bool) trace.Log {
		return trace.Log{
			Time: base, UserID: 1, Device: dev, Type: trace.ChunkStore,
			Bytes: 512 << 10, Proc: 2 * time.Second, Server: 100 * time.Millisecond,
			RTT: 100 * time.Millisecond, Proxied: proxied,
		}
	}
	a.Add(mk(trace.Android, false)) // counted
	a.Add(mk(trace.Android, true))  // proxied: dropped
	a.Add(mk(trace.PC, false))      // PC: dropped
	p := a.perf()
	if n := p.UploadTime[trace.Android].N(); n != 1 {
		t.Errorf("android upload samples = %d, want 1", n)
	}
	if p.RTT.N() != 1 {
		t.Errorf("rtt samples = %d, want 1", p.RTT.N())
	}
}

func TestPerfIgnoresPartialChunksForFig12(t *testing.T) {
	a := NewAnalyzer(Options{})
	base := time.Date(2015, 8, 3, 0, 0, 0, 0, time.UTC)
	a.Add(trace.Log{
		Time: base, UserID: 1, Device: trace.IOS, Type: trace.ChunkStore,
		Bytes: 100 << 10, Proc: time.Second, Server: 50 * time.Millisecond,
		RTT: 80 * time.Millisecond,
	})
	p := a.perf()
	if n := p.UploadTime[trace.IOS].N(); n != 0 {
		t.Errorf("partial chunk counted in Fig 12 sample: %d", n)
	}
	// But its RTT still feeds Fig 14.
	if p.RTT.N() != 1 {
		t.Errorf("rtt samples = %d, want 1", p.RTT.N())
	}
}

func TestStratumOf(t *testing.T) {
	mk := func(devs ...trace.DeviceType) *userAcc {
		u := &userAcc{devices: map[uint64]trace.DeviceType{}}
		for i, d := range devs {
			u.devices[uint64(i)] = d
		}
		return u
	}
	cases := []struct {
		acc  *userAcc
		want string
	}{
		{mk(trace.Android), StratumOneDevice},
		{mk(trace.IOS, trace.Android), StratumMultiDevice},
		{mk(trace.IOS, trace.Android, trace.Android), StratumThreePlus},
		{mk(trace.Android, trace.PC), StratumMobileAndPC},
		{mk(trace.PC), "pc-only"},
	}
	for i, c := range cases {
		if got := stratumOf(c.acc); got != c.want {
			t.Errorf("case %d: stratum = %s, want %s", i, got, c.want)
		}
	}
}
