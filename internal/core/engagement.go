package core

import (
	"time"

	"mcloud/internal/trace"
)

// Stratum names for the engagement analyses (Fig 8/9).
const (
	StratumOneDevice   = "1-mobile-device"
	StratumMultiDevice = ">1-mobile-device"
	StratumThreePlus   = ">2-mobile-device"
	StratumMobileAndPC = "mobile-and-pc"
)

// EngagementResult carries Fig 8 (return day) and Fig 9 (retrieval
// after day-one uploads).
type EngagementResult struct {
	// Day0Users is the number of users active on the first day, per
	// stratum (the paper's 233,225 users, scaled).
	Day0Users map[string]int
	// ReturnDay[stratum][d] is the fraction of the stratum's day-0
	// users whose next activity after day 0 lands on day d (1..Days-1);
	// index 0 holds the fraction that never return ("> 6" in Fig 8 is
	// the complement story: users either return soon or not at all).
	ReturnDay map[string][]float64
	// NeverReturn is the fraction of day-0 users with no activity on
	// days 1..Days-1, per stratum.
	NeverReturn map[string]float64

	// Fig 9: of users who uploaded on day 0, the cumulative fraction
	// with at least one retrieval operation on day <= d (day 0
	// included: same-day sync).
	RetrievalByDay map[string][]float64
	// NeverRetrieve is the complement at the end of the window.
	NeverRetrieve map[string]float64
	Day0Uploaders map[string]int
}

// stratumOf buckets a user by its observed devices.
func stratumOf(u *userAcc) string {
	mobile, pc := 0, false
	for _, d := range u.devices {
		if d.Mobile() {
			mobile++
		} else {
			pc = true
		}
	}
	switch {
	case pc && mobile > 0:
		return StratumMobileAndPC
	case pc:
		return "pc-only"
	case mobile > 2:
		return StratumThreePlus
	case mobile > 1:
		return StratumMultiDevice
	default:
		return StratumOneDevice
	}
}

func (a *Analyzer) engagement() EngagementResult {
	days := a.opts.Days
	anchor := a.anchorStart()
	res := EngagementResult{
		Day0Users:      map[string]int{},
		ReturnDay:      map[string][]float64{},
		NeverReturn:    map[string]float64{},
		RetrievalByDay: map[string][]float64{},
		NeverRetrieve:  map[string]float64{},
		Day0Uploaders:  map[string]int{},
	}

	dayOf := func(t time.Time) int { return int(t.Sub(anchor) / (24 * time.Hour)) }

	type agg struct {
		day0          int
		returnOn      []int // first return day counts, index 1..days-1
		never         int
		uploaders     int
		retrieveBy    []int // first retrieval day counts (cumulated later)
		neverRetrieve int
	}
	strata := map[string]*agg{}
	get := func(s string) *agg {
		v := strata[s]
		if v == nil {
			v = &agg{returnOn: make([]int, days), retrieveBy: make([]int, days)}
			strata[s] = v
		}
		return v
	}

	for _, u := range a.byUser {
		activeDay := make([]bool, days)
		firstUpload := time.Time{}
		firstRetrievalDay := -1
		for _, l := range u.logs {
			d := dayOf(l.Time)
			if d < 0 || d >= days {
				continue
			}
			activeDay[d] = true
			if l.Type == trace.FileStore && d == 0 && (firstUpload.IsZero() || l.Time.Before(firstUpload)) {
				firstUpload = l.Time
			}
		}
		if !activeDay[0] {
			continue
		}
		st := get(stratumOf(u))
		st.day0++

		// Fig 8: first return day after day 0.
		ret := -1
		for d := 1; d < days; d++ {
			if activeDay[d] {
				ret = d
				break
			}
		}
		if ret < 0 {
			st.never++
		} else {
			st.returnOn[ret]++
		}

		// Fig 9: users who uploaded on day 0; first retrieval at or
		// after the upload.
		if !firstUpload.IsZero() {
			st.uploaders++
			for _, l := range u.logs {
				if l.Type == trace.FileRetrieve && !l.Time.Before(firstUpload) {
					d := dayOf(l.Time)
					if d >= 0 && d < days {
						firstRetrievalDay = d
						break
					}
				}
			}
			if firstRetrievalDay < 0 {
				st.neverRetrieve++
			} else {
				st.retrieveBy[firstRetrievalDay]++
			}
		}
	}

	for name, st := range strata {
		res.Day0Users[name] = st.day0
		if st.day0 > 0 {
			frac := make([]float64, days)
			for d := 1; d < days; d++ {
				frac[d] = float64(st.returnOn[d]) / float64(st.day0)
			}
			res.ReturnDay[name] = frac
			res.NeverReturn[name] = float64(st.never) / float64(st.day0)
		}
		res.Day0Uploaders[name] = st.uploaders
		if st.uploaders > 0 {
			cum := make([]float64, days)
			acc := 0
			for d := 0; d < days; d++ {
				acc += st.retrieveBy[d]
				cum[d] = float64(acc) / float64(st.uploaders)
			}
			res.RetrievalByDay[name] = cum
			res.NeverRetrieve[name] = float64(st.neverRetrieve) / float64(st.uploaders)
		}
	}
	return res
}
