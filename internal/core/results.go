package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mcloud/internal/dist"
	"mcloud/internal/session"
	"mcloud/internal/trace"
)

// Results is the complete output of one analysis pass.
type Results struct {
	Logs  int64
	Users int

	Workload   WorkloadResult   // Fig 1
	InterOp    InterOpResult    // Fig 3
	Sessions   SessionResult    // §3.1.1, Fig 4, Fig 5
	FileSize   FileSizeResult   // Fig 6 / Table 2
	Usage      UsageResult      // Fig 7 / Table 3
	Engagement EngagementResult // Fig 8 / Fig 9
	Activity   ActivityResult   // Fig 10
	Perf       PerfResult       // Fig 12 / 14 / 15

	// Warnings records engines that could not run (usually because the
	// log set is too small or one-sided for a model fit); the other
	// results remain valid.
	Warnings []string
}

// Run executes every engine over the accumulated logs. Model-fitting
// engines that fail on sparse input are recorded as warnings rather
// than aborting the pass; the returned error is non-nil only when no
// analysis was possible at all.
func (a *Analyzer) Run() (Results, error) {
	sessions := a.sessions()
	res := Results{Logs: a.totalLogs, Users: len(a.byUser)}
	if a.totalLogs == 0 {
		return res, fmt.Errorf("core: no logs to analyze")
	}
	res.Workload = a.workload()
	var err error
	if res.InterOp, err = a.interOp(); err != nil {
		res.Warnings = append(res.Warnings, fmt.Sprintf("inter-op analysis (Fig 3): %v", err))
	}
	res.Sessions = a.sessionAnalysis(sessions)
	if res.FileSize, err = a.fileSize(sessions); err != nil {
		res.Warnings = append(res.Warnings, fmt.Sprintf("file size analysis (Fig 6): %v", err))
	}
	res.Usage = a.usage()
	res.Engagement = a.engagement()
	if res.Activity, err = a.activity(); err != nil {
		res.Warnings = append(res.Warnings, fmt.Sprintf("activity analysis (Fig 10): %v", err))
	}
	res.Perf = a.perf()
	return res, nil
}

// --- Fig 1: workload temporal pattern ---------------------------------

// HourPoint is one hour of the Fig 1 series.
type HourPoint struct {
	Hour       int // hours since observation start
	StoreVol   int64
	RetrVol    int64
	StoreFiles int64
	RetrFiles  int64
}

// WorkloadResult is the Fig 1 series plus headline aggregates.
type WorkloadResult struct {
	Hours          []HourPoint
	TotalStoreVol  int64
	TotalRetrVol   int64
	TotalStoreFile int64
	TotalRetrFile  int64
	PeakHourOfDay  int     // modal local hour of total volume
	PeakToTrough   float64 // peak/trough ratio of hourly volume by hour of day
}

// FileRatio returns stored files per retrieved file.
func (w WorkloadResult) FileRatio() float64 {
	if w.TotalRetrFile == 0 {
		return math.Inf(1)
	}
	return float64(w.TotalStoreFile) / float64(w.TotalRetrFile)
}

// VolumeRatio returns retrieved volume per stored volume.
func (w WorkloadResult) VolumeRatio() float64 {
	if w.TotalStoreVol == 0 {
		return math.Inf(1)
	}
	return float64(w.TotalRetrVol) / float64(w.TotalStoreVol)
}

func (a *Analyzer) workload() WorkloadResult {
	// The hourly fold happens here, against the final anchor, so
	// analyzers merged from user shards bucket identically to a
	// sequential pass.
	anchor := a.anchorStart()
	hourlyStoreVol := make(map[int]int64)
	hourlyRetrVol := make(map[int]int64)
	hourlyStoreFile := make(map[int]int64)
	hourlyRetrFile := make(map[int]int64)
	for _, u := range a.byUser {
		for _, l := range u.logs {
			hour := int(l.Time.Sub(anchor) / time.Hour)
			switch l.Type {
			case trace.FileStore:
				hourlyStoreFile[hour]++
			case trace.FileRetrieve:
				hourlyRetrFile[hour]++
			case trace.ChunkStore:
				hourlyStoreVol[hour] += l.Bytes
			case trace.ChunkRetrieve:
				hourlyRetrVol[hour] += l.Bytes
			}
		}
	}

	var res WorkloadResult
	maxHour := 0
	for h := range hourlyStoreVol {
		if h > maxHour {
			maxHour = h
		}
	}
	for h := range hourlyRetrVol {
		if h > maxHour {
			maxHour = h
		}
	}
	res.Hours = make([]HourPoint, maxHour+1)
	for h := range res.Hours {
		res.Hours[h] = HourPoint{
			Hour:       h,
			StoreVol:   hourlyStoreVol[h],
			RetrVol:    hourlyRetrVol[h],
			StoreFiles: hourlyStoreFile[h],
			RetrFiles:  hourlyRetrFile[h],
		}
		res.TotalStoreVol += hourlyStoreVol[h]
		res.TotalRetrVol += hourlyRetrVol[h]
		res.TotalStoreFile += hourlyStoreFile[h]
		res.TotalRetrFile += hourlyRetrFile[h]
	}

	// Hour-of-day profile: anchor-local hours.
	var byHour [24]float64
	for h, p := range res.Hours {
		local := anchor.Add(time.Duration(h) * time.Hour).Hour()
		byHour[local] += float64(p.StoreVol + p.RetrVol)
	}
	peak, trough := 0, 0
	for h := range byHour {
		if byHour[h] > byHour[peak] {
			peak = h
		}
		if byHour[h] < byHour[trough] {
			trough = h
		}
	}
	res.PeakHourOfDay = peak
	if byHour[trough] > 0 {
		res.PeakToTrough = byHour[peak] / byHour[trough]
	}
	return res
}

// --- Fig 3: inter-operation time --------------------------------------

// InterOpResult carries the Fig 3 histogram, the fitted mixture, and
// the derived session threshold.
type InterOpResult struct {
	Gaps      int                  // gaps in the fitted sample
	Hist      *dist.LogHistogram   // histogram over log10 seconds
	Mixture   dist.GaussianMixture // 2-component fit on log10 seconds
	ValleySec float64              // histogram valley between the modes
	// TauSec is the suggested session threshold: the paper rounds the
	// valley to one hour.
	TauSec float64
	// CrossoverSec is where the two components are equally likely.
	CrossoverSec float64
}

// Fitted reports whether the mixture fit succeeded (enough gaps).
func (r InterOpResult) Fitted() bool { return len(r.Mixture.Components) == 2 }

// InSessionMeanSec returns 10^mean of the in-session component, or 0
// when the fit did not run.
func (r InterOpResult) InSessionMeanSec() float64 {
	if !r.Fitted() {
		return 0
	}
	return math.Pow(10, r.Mixture.Components[0].Mean)
}

// InterSessionMeanSec returns 10^mean of the inter-session component,
// or 0 when the fit did not run.
func (r InterOpResult) InterSessionMeanSec() float64 {
	if !r.Fitted() {
		return 0
	}
	return math.Pow(10, r.Mixture.Components[1].Mean)
}

func (a *Analyzer) interOp() (InterOpResult, error) {
	var all []trace.Log
	for _, u := range a.byUser {
		for _, l := range u.logs {
			if l.Type.FileOp() && l.Device.Mobile() {
				all = append(all, l)
			}
		}
	}
	gaps := session.InterOpGaps(all)

	res := InterOpResult{Hist: dist.NewLogHistogram(-1, 7, 96)}
	var lg []float64
	for _, g := range gaps {
		res.Hist.Add(g)
		if g >= a.opts.MinGapSeconds {
			lg = append(lg, math.Log10(g))
		}
	}
	res.Gaps = len(lg)
	if len(lg) < 10 {
		return res, fmt.Errorf("only %d usable gaps", len(lg))
	}
	m, err := dist.FitGaussianMixture(lg, 2, 0, 0)
	if err != nil {
		return res, err
	}
	res.Mixture = m
	if v, err := res.Hist.ValleySeconds(
		math.Pow(10, m.Components[0].Mean),
		math.Pow(10, m.Components[1].Mean)); err == nil {
		res.ValleySec = v
	}
	res.CrossoverSec = math.Pow(10, m.EquallyLikely(0, 1))
	// The paper rounds the empirical valley to the hour mark.
	res.TauSec = 3600
	return res, nil
}

// --- §3.1.1 + Fig 4 + Fig 5: sessions ---------------------------------

// SessionBin is one (#files → volume) bin of Fig 5b/5c.
type SessionBin struct {
	Files  int
	N      int
	MeanMB float64
	MedMB  float64
	P25MB  float64
	P75MB  float64
}

// SessionResult groups the session-level findings.
type SessionResult struct {
	Stats session.Stats
	// Fractions by class, Empty excluded (§3.1.1).
	StoreOnlyFrac, RetrieveOnlyFrac, MixedFrac float64

	// Fig 5a: operations per session.
	POneOp     float64 // share of sessions with exactly one operation
	POver20Ops float64

	// Fig 4: CDF of normalized operating time for multi-op sessions,
	// stratified as in the paper.
	BurstAll    *dist.ECDF // #files > 1
	BurstOver10 *dist.ECDF // #files > 10
	BurstOver20 *dist.ECDF // #files > 20

	// Fig 5b/5c: session volume by #files.
	StoreBins    []SessionBin
	RetrieveBins []SessionBin
	// StoreSlopeMB is the linear coefficient of store-session volume
	// against file count (the paper reads ~1.5 MB/file).
	StoreSlopeMB float64
	// OneFileRetrieveMeanMB is the average volume of single-file
	// retrieve sessions (the paper reads ~70 MB).
	OneFileRetrieveMeanMB float64
}

func (a *Analyzer) sessionAnalysis(sessions []session.Session) SessionResult {
	var res SessionResult
	res.Stats = session.Summarize(sessions)
	res.StoreOnlyFrac = res.Stats.ClassFraction(session.StoreOnly)
	res.RetrieveOnlyFrac = res.Stats.ClassFraction(session.RetrieveOnly)
	res.MixedFrac = res.Stats.ClassFraction(session.Mixed)

	var all, over10, over20 []float64
	one, over20ops, nonEmpty := 0, 0, 0
	type binAcc struct {
		vols []float64
	}
	storeBins := map[int]*binAcc{}
	retrBins := map[int]*binAcc{}
	var oneFileRetr []float64

	for i := range sessions {
		s := &sessions[i]
		if s.Class() == session.Empty {
			continue
		}
		nonEmpty++
		if s.FileOps == 1 {
			one++
		}
		if s.FileOps > 20 {
			over20ops++
		}
		if s.FileOps > 1 {
			v := s.NormalizedOperatingTime()
			all = append(all, v)
			if s.FileOps > 10 {
				over10 = append(over10, v)
			}
			if s.FileOps > 20 {
				over20 = append(over20, v)
			}
		}
		mb := float64(s.Volume()) / (1 << 20)
		switch s.Class() {
		case session.StoreOnly:
			b := storeBins[s.FileOps]
			if b == nil {
				b = &binAcc{}
				storeBins[s.FileOps] = b
			}
			b.vols = append(b.vols, mb)
		case session.RetrieveOnly:
			b := retrBins[s.FileOps]
			if b == nil {
				b = &binAcc{}
				retrBins[s.FileOps] = b
			}
			b.vols = append(b.vols, mb)
			if s.FileOps == 1 {
				oneFileRetr = append(oneFileRetr, mb)
			}
		}
	}
	if nonEmpty > 0 {
		res.POneOp = float64(one) / float64(nonEmpty)
		res.POver20Ops = float64(over20ops) / float64(nonEmpty)
	}
	res.BurstAll = dist.NewECDF(all)
	res.BurstOver10 = dist.NewECDF(over10)
	res.BurstOver20 = dist.NewECDF(over20)

	mkBins := func(m map[int]*binAcc) []SessionBin {
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		out := make([]SessionBin, 0, len(keys))
		for _, k := range keys {
			vols := dist.SortedCopy(m[k].vols)
			out = append(out, SessionBin{
				Files:  k,
				N:      len(vols),
				MeanMB: dist.Mean(vols),
				MedMB:  dist.Median(vols),
				P25MB:  dist.Quantile(vols, 0.25),
				P75MB:  dist.Quantile(vols, 0.75),
			})
		}
		return out
	}
	res.StoreBins = mkBins(storeBins)
	res.RetrieveBins = mkBins(retrBins)

	// Linear fit of median store volume against #files over the bins
	// with enough support (Fig 5b's "linear coefficient ≈ 1.5 MB").
	var xs, ys []float64
	for _, b := range res.StoreBins {
		if b.N >= 5 && b.Files <= 100 {
			xs = append(xs, float64(b.Files))
			ys = append(ys, b.MedMB)
		}
	}
	res.StoreSlopeMB, _, _ = dist.LinearFit(xs, ys)
	if len(oneFileRetr) > 0 {
		res.OneFileRetrieveMeanMB = dist.Mean(oneFileRetr)
	}
	return res
}

// --- Fig 6 / Table 2: average file size -------------------------------

// FileSizeResult holds the mixture fits over per-session average file
// sizes, in MB.
type FileSizeResult struct {
	StoreMixture    dist.ExpMixture
	RetrieveMixture dist.ExpMixture
	StoreGOF        dist.GOFResult
	RetrieveGOF     dist.GOFResult
	StoreN          int
	RetrieveN       int
	StoreCCDF       *dist.ECDF
	RetrieveCCDF    *dist.ECDF
}

func (a *Analyzer) fileSize(sessions []session.Session) (FileSizeResult, error) {
	var res FileSizeResult
	var store, retr []float64
	for i := range sessions {
		s := &sessions[i]
		if s.FileOps == 0 || !s.Device.Mobile() {
			continue
		}
		mb := s.AvgFileSize() / (1 << 20)
		if mb <= 0 {
			continue
		}
		switch s.Class() {
		case session.StoreOnly:
			store = append(store, mb)
		case session.RetrieveOnly:
			retr = append(retr, mb)
		}
	}
	res.StoreN, res.RetrieveN = len(store), len(retr)
	if len(store) < 20 || len(retr) < 20 {
		return res, fmt.Errorf("too few sessions for the mixture fit (%d store, %d retrieve)", len(store), len(retr))
	}
	var err error
	if res.StoreMixture, err = dist.SelectExpMixture(store, 3, 0.001); err != nil {
		return res, err
	}
	if res.RetrieveMixture, err = dist.SelectExpMixture(retr, 3, 0.001); err != nil {
		return res, err
	}
	res.StoreCCDF = dist.NewECDF(store)
	res.RetrieveCCDF = dist.NewECDF(retr)
	np := 2*len(res.StoreMixture.Components) - 1
	res.StoreGOF, _ = dist.ChiSquareGOF(store, res.StoreMixture.CDF, np, 30)
	np = 2*len(res.RetrieveMixture.Components) - 1
	res.RetrieveGOF, _ = dist.ChiSquareGOF(retr, res.RetrieveMixture.CDF, np, 30)
	return res, nil
}

// --- Fig 7 / Table 3: usage patterns ----------------------------------

// UserClassRow is one cell block of Table 3.
type UserClassRow struct {
	Users     int
	UserFrac  float64
	StoreVol  int64
	RetrVol   int64
	StoreFrac float64 // of the category's total stored volume
	RetrFrac  float64
}

// UsageResult carries Fig 7 and Table 3.
type UsageResult struct {
	// Ratios holds log10((stored+1)/(retrieved+1)) per user, by
	// category, for the Fig 7 CDFs. Pure uploaders sit at +10 and pure
	// downloaders at -10 (the paper's axis is clipped the same way).
	RatiosMobileOnly  []float64
	RatiosMobileAndPC []float64
	RatiosPCOnly      []float64
	RatiosByDevices   map[int][]float64 // mobile-only users by #devices (1, 2, 3+)

	// Table 3: class → category → row.
	Table3 map[string]map[string]UserClassRow
}

// classifyVolume applies the paper's thresholds (§3.2.1).
func classifyVolume(storeVol, retrVol int64) string {
	total := storeVol + retrVol
	if total < 1<<20 {
		return "occasional"
	}
	ratio := (float64(storeVol) + 1) / (float64(retrVol) + 1)
	switch {
	case ratio > 1e5:
		return "upload-only"
	case ratio < 1e-5:
		return "download-only"
	default:
		return "mixed"
	}
}

func (a *Analyzer) usage() UsageResult {
	res := UsageResult{
		RatiosByDevices: map[int][]float64{},
		Table3:          map[string]map[string]UserClassRow{},
	}
	type catAgg struct {
		users             int
		storeVol, retrVol int64
		classUsers        map[string]int
		classStore        map[string]int64
		classRetr         map[string]int64
	}
	cats := map[string]*catAgg{}

	for id, u := range a.byUser {
		mobile, pc := false, false
		if a.opts.UserCategory != nil {
			mobile, pc = a.opts.UserCategory(id)
		} else {
			for _, d := range u.devices {
				if d.Mobile() {
					mobile = true
				} else {
					pc = true
				}
			}
		}
		cat := "pc-only"
		switch {
		case mobile && pc:
			cat = "mobile-and-pc"
		case mobile:
			cat = "mobile-only"
		}

		ratio := math.Log10((float64(u.storeVol) + 1) / (float64(u.retrVol) + 1))
		if ratio > 10 {
			ratio = 10
		}
		if ratio < -10 {
			ratio = -10
		}
		switch cat {
		case "mobile-only":
			res.RatiosMobileOnly = append(res.RatiosMobileOnly, ratio)
			nDev := 0
			for _, d := range u.devices {
				if d.Mobile() {
					nDev++
				}
			}
			if nDev > 3 {
				nDev = 3
			}
			res.RatiosByDevices[nDev] = append(res.RatiosByDevices[nDev], ratio)
		case "mobile-and-pc":
			res.RatiosMobileAndPC = append(res.RatiosMobileAndPC, ratio)
		default:
			res.RatiosPCOnly = append(res.RatiosPCOnly, ratio)
		}

		ca := cats[cat]
		if ca == nil {
			ca = &catAgg{
				classUsers: map[string]int{},
				classStore: map[string]int64{},
				classRetr:  map[string]int64{},
			}
			cats[cat] = ca
		}
		class := classifyVolume(u.storeVol, u.retrVol)
		ca.users++
		ca.storeVol += u.storeVol
		ca.retrVol += u.retrVol
		ca.classUsers[class]++
		ca.classStore[class] += u.storeVol
		ca.classRetr[class] += u.retrVol
	}

	for cat, ca := range cats {
		for _, class := range []string{"upload-only", "download-only", "occasional", "mixed"} {
			row := UserClassRow{
				Users:    ca.classUsers[class],
				StoreVol: ca.classStore[class],
				RetrVol:  ca.classRetr[class],
			}
			if ca.users > 0 {
				row.UserFrac = float64(row.Users) / float64(ca.users)
			}
			if ca.storeVol > 0 {
				row.StoreFrac = float64(row.StoreVol) / float64(ca.storeVol)
			}
			if ca.retrVol > 0 {
				row.RetrFrac = float64(row.RetrVol) / float64(ca.retrVol)
			}
			if res.Table3[class] == nil {
				res.Table3[class] = map[string]UserClassRow{}
			}
			res.Table3[class][cat] = row
		}
	}
	return res
}
