package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasicLine(t *testing.T) {
	s := Series{Name: "line", Xs: []float64{0, 1, 2, 3}, Ys: []float64{0, 1, 2, 3}}
	out := Render(Options{Width: 20, Height: 8, Title: "t"}, s)
	if !strings.Contains(out, "t\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing data marks")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("only %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(Options{}, Series{})
	if !strings.Contains(out, "no data") {
		t.Errorf("expected no-data message, got %q", out)
	}
}

func TestRenderLogX(t *testing.T) {
	s := Series{Xs: []float64{1, 10, 100, 1000}, Ys: []float64{1, 2, 3, 4}}
	out := Render(Options{LogX: true, Width: 30, Height: 6}, s)
	if !strings.Contains(out, "10^") {
		t.Error("log axis labels missing")
	}
	// Non-positive x values must be skipped, not crash.
	s2 := Series{Xs: []float64{-1, 0, 10}, Ys: []float64{1, 2, 3}}
	_ = Render(Options{LogX: true}, s2)
}

func TestRenderMultipleSeries(t *testing.T) {
	a := Series{Name: "a", Xs: []float64{0, 1}, Ys: []float64{0, 1}}
	b := Series{Name: "b", Xs: []float64{0, 1}, Ys: []float64{1, 0}}
	out := Render(Options{Width: 20, Height: 6}, a, b)
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Error("legend missing")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := Series{Xs: []float64{1, 2, 3}, Ys: []float64{5, 5, 5}}
	out := Render(Options{Width: 10, Height: 4}, s)
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("constant series rendered badly: %q", out)
	}
}

func TestHistogram(t *testing.T) {
	centers := []float64{1, 2, 3, 4, 5}
	counts := []int64{1, 5, 10, 5, 1}
	out := Histogram("h", centers, counts, 20, 6)
	if !strings.Contains(out, "#") {
		t.Error("histogram bars missing")
	}
	if Histogram("h", nil, nil, 10, 5) != "(no data)\n" {
		t.Error("empty histogram should say no data")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"col1", "c2"}, [][]string{{"a", "bbbb"}, {"cc", "d"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "col1") {
		t.Error("header missing")
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("separator missing")
	}
	// Alignment: all rows same display width for first column.
	if len(lines[2]) < len("col1  bbbb") {
		t.Error("rows not padded")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1.5e+06",
		150:     "150",
		1.5:     "1.5",
		0.25:    "0.250",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
