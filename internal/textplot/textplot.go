// Package textplot renders small ASCII charts — line series, CDFs and
// histograms — so the reproduction binaries can show each figure's
// shape directly in the terminal next to the numbers.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Options controls chart geometry.
type Options struct {
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	LogX   bool
	Title  string
	XLabel string
	YLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series into a text block.
func Render(opts Options, series ...Series) string {
	opts = opts.withDefaults()
	w, h := opts.Width, opts.Height

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.Xs {
			x := s.Xs[i]
			if opts.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			y := s.Ys[i]
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if math.IsInf(minX, 1) || minX == maxX && minY == maxY {
		return "(no data)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.Xs {
			x := s.Xs[i]
			if opts.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			col := int((x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Ys[i]-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yLo, yHi := formatTick(minY), formatTick(maxY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		} else if r == h-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	xLo, xHi := minX, maxX
	if opts.LogX {
		fmt.Fprintf(&b, "%s  10^%s%s10^%s", strings.Repeat(" ", pad),
			formatTick(xLo), strings.Repeat(" ", max(1, w-8-len(formatTick(xLo))-len(formatTick(xHi)))), formatTick(xHi))
	} else {
		fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", pad),
			formatTick(xLo), strings.Repeat(" ", max(1, w-len(formatTick(xLo))-len(formatTick(xHi)))), formatTick(xHi))
	}
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", opts.XLabel)
	}
	b.WriteByte('\n')
	if len(series) > 1 || series[0].Name != "" {
		for si, s := range series {
			if s.Name != "" {
				fmt.Fprintf(&b, "  %c %s", seriesMarks[si%len(seriesMarks)], s.Name)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CDF renders an empirical CDF from (value, probability) pairs.
func CDF(title, xlabel string, logX bool, series ...Series) string {
	return Render(Options{Title: title, XLabel: xlabel, LogX: logX}, series...)
}

// Histogram renders bin counts as a bar chart.
func Histogram(title string, centers []float64, counts []int64, width, height int) string {
	if len(centers) == 0 {
		return "(no data)\n"
	}
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 12
	}
	// Downsample bins into columns.
	cols := make([]float64, width)
	maxC := 0.0
	for i, c := range counts {
		col := i * width / len(counts)
		cols[col] += float64(c)
		if cols[col] > maxC {
			maxC = cols[col]
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r := 0; r < height; r++ {
		level := float64(height-r) / float64(height)
		line := make([]byte, width)
		for c := range cols {
			if maxC > 0 && cols[c]/maxC >= level {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		fmt.Fprintf(&b, " |%s|\n", string(line))
	}
	fmt.Fprintf(&b, "  %s%s%s\n", formatTick(centers[0]),
		strings.Repeat(" ", max(1, width-len(formatTick(centers[0]))-len(formatTick(centers[len(centers)-1])))),
		formatTick(centers[len(centers)-1]))
	return b.String()
}

// Table renders rows with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
