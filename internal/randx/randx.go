// Package randx provides deterministic, splittable random number
// streams and the samplers used throughout the workload generator and
// the TCP simulator.
//
// All randomness in the repository flows through randx so that
// datasets, simulations, tests and benchmarks are bit-reproducible
// from a single seed. A Source is a SplitMix64 generator; Derive
// produces statistically independent child streams from a parent seed
// and a string label, which lets every user, device and flow own a
// private stream whose identity is stable across runs regardless of
// generation order.
package randx

import (
	"math"
)

// Source is a deterministic pseudo-random number generator
// (SplitMix64). The zero value is a valid generator seeded with 0.
// Source is not safe for concurrent use; derive one per goroutine.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new Source whose stream is a deterministic function
// of the parent seed and the label. Streams derived with different
// labels are statistically independent.
func Derive(seed uint64, label string) *Source {
	h := fnv64(label)
	// Mix the seed and label hash through one SplitMix64 round each so
	// that similar labels do not produce correlated streams.
	s := &Source{state: seed ^ 0x9e3779b97f4a7c15}
	s.state += h
	s.Uint64()
	return s
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a child Source seeded from the parent stream. The
// parent advances by one draw.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("randx: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)); mu and sigma parameterize the
// underlying normal in natural-log space.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exp returns an exponential variate with the given mean. It panics if
// mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("randx: Exp with non-positive mean")
	}
	u := s.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -mean * math.Log(1-u)
}

// Pareto returns a Pareto (type I) variate with minimum xm and shape
// alpha.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	return xm / math.Pow(1-u, 1/alpha)
}

// Weibull returns a Weibull variate with scale lambda and shape k.
// Its survival function is exp(-(x/lambda)^k) — the paper's stretched
// exponential.
func (s *Source) Weibull(lambda, k float64) float64 {
	u := s.Float64()
	return lambda * math.Pow(-math.Log(1-u), 1/k)
}

// Poisson returns a Poisson variate with the given mean, using
// Knuth's method for small means and normal approximation above 500.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli trials with success probability p (support {0, 1, ...}).
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("randx: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	return int(math.Log(1-u) / math.Log(1-p))
}

// Categorical draws an index with probability proportional to
// weights[i]. It panics if weights is empty or sums to a non-positive
// value.
func (s *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("randx: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("randx: empty or zero-mass categorical")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// MixtureExp draws from a mixture of exponentials with component
// weights alphas and means mus.
func (s *Source) MixtureExp(alphas, mus []float64) float64 {
	i := s.Categorical(alphas)
	return s.Exp(mus[i])
}

// Zipf draws ranks in [1, n] with probability proportional to
// 1/rank^exponent. The sampler precomputes nothing; it uses rejection
// against the continuous envelope and is suitable for moderate n.
type Zipf struct {
	n        int
	exponent float64
	// hIntegral(n+0.5) and hIntegral(0.5) cached for inversion.
	hx0, hn float64
	src     *Source
}

// NewZipf returns a Zipf sampler over ranks [1, n] with the given
// exponent (> 0, != 1 handled as well). It panics if n < 1 or
// exponent <= 0.
func NewZipf(src *Source, n int, exponent float64) *Zipf {
	if n < 1 || exponent <= 0 {
		panic("randx: invalid Zipf parameters")
	}
	z := &Zipf{n: n, exponent: exponent, src: src}
	z.hx0 = z.hIntegral(0.5)
	z.hn = z.hIntegral(float64(n) + 0.5)
	return z
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.exponent)*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.exponent * math.Log(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.exponent)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3
}

// helper2 computes expm1(x)/x with a series expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6
}

// Draw returns the next Zipf-distributed rank in [1, n].
// The algorithm is the rejection-inversion sampler of Hörmann and
// Derflinger, the same approach used by math/rand's Zipf.
func (z *Zipf) Draw() int {
	for {
		u := z.hn + z.src.Float64()*(z.hx0-z.hn)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k)
		}
	}
}

// Shuffle permutes the first n indices in place via the provided swap
// function, using the Fisher-Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
