package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, "user/1")
	b := Derive(7, "user/2")
	c := Derive(7, "user/1")
	if a.Uint64() != c.Uint64() {
		t.Fatal("Derive with identical labels should agree")
	}
	a2 := Derive(7, "user/1")
	matches := 0
	for i := 0; i < 100; i++ {
		if a2.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("derived streams with different labels matched %d times", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// meanAndVar computes the sample mean and variance of draws from f.
func meanAndVar(n int, f func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := f()
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	mean, v := meanAndVar(200000, func() float64 { return s.Normal(5, 2) })
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %.4f, want ~5", mean)
	}
	if math.Abs(v-4) > 0.15 {
		t.Errorf("normal variance = %.4f, want ~4", v)
	}
}

func TestExpMoments(t *testing.T) {
	s := New(12)
	mean, v := meanAndVar(200000, func() float64 { return s.Exp(3) })
	if math.Abs(mean-3) > 0.06 {
		t.Errorf("exp mean = %.4f, want ~3", mean)
	}
	if math.Abs(v-9) > 0.6 {
		t.Errorf("exp variance = %.4f, want ~9", v)
	}
}

func TestExpPositive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Exp(1.5) < 0 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(13)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(2, 0.5)
	}
	below := 0
	want := math.Exp(2.0)
	for _, v := range vals {
		if v < want {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %.4f, want ~0.5", frac)
	}
}

func TestWeibullSurvival(t *testing.T) {
	// P(X > lambda) = exp(-1) for any shape.
	s := New(14)
	const n = 100000
	for _, k := range []float64{0.15, 0.5, 1, 2} {
		above := 0
		for i := 0; i < n; i++ {
			if s.Weibull(10, k) > 10 {
				above++
			}
		}
		frac := float64(above) / float64(n)
		if math.Abs(frac-math.Exp(-1)) > 0.01 {
			t.Errorf("shape %.2f: P(X>lambda) = %.4f, want %.4f", k, frac, math.Exp(-1))
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(15)
	for _, mean := range []float64{0.5, 4, 60, 700} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %.3f", mean, got)
		}
	}
}

func TestPoissonZeroOrNegativeMean(t *testing.T) {
	s := New(16)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Error("Poisson with non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(17)
	p := 0.25
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	got := sum / n
	want := (1 - p) / p
	if math.Abs(got-want) > 0.06 {
		t.Errorf("Geometric(%v) mean = %.3f, want %.3f", p, got, want)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	s := New(18)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10
		got := float64(c) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty categorical did not panic")
		}
	}()
	New(1).Categorical(nil)
}

func TestMixtureExpMean(t *testing.T) {
	s := New(19)
	alphas := []float64{0.7, 0.3}
	mus := []float64{1, 10}
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.MixtureExp(alphas, mus)
	}
	got := sum / n
	want := 0.7*1 + 0.3*10
	if math.Abs(got-want) > 0.08 {
		t.Errorf("mixture mean = %.4f, want %.4f", got, want)
	}
}

func TestZipfRange(t *testing.T) {
	s := New(20)
	z := NewZipf(s, 1000, 1.2)
	for i := 0; i < 10000; i++ {
		r := z.Draw()
		if r < 1 || r > 1000 {
			t.Fatalf("Zipf rank %d out of [1,1000]", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(21)
	z := NewZipf(s, 100, 1.5)
	counts := make([]int, 101)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Rank 1 should be about 2^1.5 ~ 2.83 times as frequent as rank 2.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.3 || ratio > 3.4 {
		t.Errorf("rank1/rank2 ratio = %.3f, want ~2.83", ratio)
	}
	if counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Error("Zipf counts are not monotonically decreasing across decades")
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(30)
		seen := make([]bool, 30)
		for _, v := range p {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("parent and split child matched %d times", matches)
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse uniformity check on 16 buckets of Float64.
	s := New(1234)
	const n = 160000
	buckets := make([]int, 16)
	for i := 0; i < n; i++ {
		buckets[int(s.Float64()*16)]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, o := range buckets {
		d := float64(o) - expected
		chi2 += d * d / expected
	}
	// 15 dof: critical value at p=0.001 is 37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square uniformity = %.2f, exceeds 37.7", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Normal(0, 1)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1<<20, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}
