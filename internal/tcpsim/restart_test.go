package tcpsim

import (
	"testing"
	"time"
)

func policyRun(t *testing.T, policy RestartPolicy, burst BurstParams, flows int) (mean PolicyResult) {
	t.Helper()
	var totalDur time.Duration
	for i := 0; i < flows; i++ {
		res, err := SimulateUploadPolicy(TransferConfig{
			Device:   AndroidProfile,
			Server:   DefaultServer,
			FileSize: 10 << 20,
			RTT:      100 * time.Millisecond,
			Seed:     uint64(i),
		}, policy, burst)
		if err != nil {
			t.Fatal(err)
		}
		totalDur += res.Duration
		mean.Restarts += res.Restarts
		mean.PacedIdles += res.PacedIdles
		mean.BurstLosses += res.BurstLosses
	}
	mean.Policy = policy
	mean.Duration = totalDur / time.Duration(flows)
	mean.Throughput = float64(10<<20) / mean.Duration.Seconds()
	return mean
}

func TestRestartPolicyOrdering(t *testing.T) {
	const flows = 40
	ss := policyRun(t, RestartSlowStart, DefaultBurst, flows)
	keep := policyRun(t, KeepWindow, DefaultBurst, flows)
	paced := policyRun(t, PacedRestart, DefaultBurst, flows)

	// Slow-start restart is the slowest; both mitigations beat it.
	if keep.Duration >= ss.Duration {
		t.Errorf("keep-window (%v) should beat slow-start (%v)", keep.Duration, ss.Duration)
	}
	if paced.Duration >= ss.Duration {
		t.Errorf("paced (%v) should beat slow-start (%v)", paced.Duration, ss.Duration)
	}
	// Pacing costs about one RTT per long idle — cheaper than a full
	// slow-start climb, pricier than an unpaced burst that gets lucky.
	if paced.PacedIdles == 0 {
		t.Error("paced policy absorbed no idles")
	}
	if ss.Restarts == 0 {
		t.Error("slow-start policy took no restarts")
	}
	if keep.Restarts != 0 || paced.Restarts != 0 {
		t.Error("mitigation policies must not restart slow start")
	}
}

func TestKeepWindowSuffersBurstLosses(t *testing.T) {
	// With a harsh burst model, blindly keeping the window loses its
	// advantage — the paper's argument for not just disabling SSAI.
	harsh := BurstParams{SafeBurst: 16 << 10, LossProb: 1, RecoveryRTOs: 4}
	keep := policyRun(t, KeepWindow, harsh, 30)
	paced := policyRun(t, PacedRestart, harsh, 30)
	if keep.BurstLosses == 0 {
		t.Fatal("harsh burst model produced no losses")
	}
	if paced.BurstLosses != 0 {
		t.Error("pacing must avoid burst losses")
	}
	if keep.Duration <= paced.Duration {
		t.Errorf("under harsh bursts, keep-window (%v) should lose to pacing (%v)",
			keep.Duration, paced.Duration)
	}
}

func TestKeepWindowNoBurstModel(t *testing.T) {
	// With burst modelling disabled, keep-window is a pure win.
	res := policyRun(t, KeepWindow, BurstParams{}, 20)
	if res.BurstLosses != 0 {
		t.Error("burst losses recorded with modelling disabled")
	}
}

func TestPolicyPairing(t *testing.T) {
	// Same seed => identical gap sequences: the slow-start run's
	// restart count equals the paced run's paced-idle count.
	for seed := uint64(0); seed < 10; seed++ {
		cfg := TransferConfig{
			Device:   AndroidProfile,
			Server:   DefaultServer,
			FileSize: 5 << 20,
			RTT:      100 * time.Millisecond,
			Seed:     seed,
		}
		ss, err := SimulateUploadPolicy(cfg, RestartSlowStart, DefaultBurst)
		if err != nil {
			t.Fatal(err)
		}
		paced, err := SimulateUploadPolicy(cfg, PacedRestart, DefaultBurst)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Restarts != paced.PacedIdles {
			t.Errorf("seed %d: restarts (%d) != paced idles (%d) — gap sequences diverged",
				seed, ss.Restarts, paced.PacedIdles)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if RestartSlowStart.String() != "slow-start" ||
		KeepWindow.String() != "keep-window" ||
		PacedRestart.String() != "paced" {
		t.Error("policy names wrong")
	}
}
