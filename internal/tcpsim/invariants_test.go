package tcpsim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestSeqMonotoneAndComplete: sequence numbers never decrease and the
// final sequence number equals the bytes offered, for arbitrary
// parameters.
func TestSeqMonotoneAndComplete(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizeRaw uint32, rttMS uint16, loss uint8) bool {
		size := int64(sizeRaw%(8<<20)) + 1
		rtt := time.Duration(rttMS%900+10) * time.Millisecond
		p := Params{
			RTT:      rtt,
			Seed:     seed,
			LossProb: float64(loss%50) / 100,
			RWnd:     64 << 10,
		}
		res, err := Simulate(p, []Chunk{{Size: size}})
		if err != nil {
			return false
		}
		prev := int64(0)
		for _, s := range res.Samples {
			if s.Seq < prev || s.Inflight <= 0 {
				return false
			}
			prev = s.Seq
		}
		return prev == size
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDurationMonotoneInIdle: adding idle time never makes a flow
// finish earlier.
func TestDurationMonotoneInIdle(t *testing.T) {
	if err := quick.Check(func(seed uint64, idleMSRaw uint16) bool {
		idle := time.Duration(idleMSRaw%5000) * time.Millisecond
		mk := func(gap time.Duration) time.Duration {
			res, err := Simulate(Params{RTT: 100 * time.Millisecond, RWnd: 64 << 10, SSAI: true, Seed: seed},
				[]Chunk{{Size: 512 << 10}, {Idle: gap, Size: 512 << 10}})
			if err != nil {
				return -1
			}
			return res.Duration
		}
		short := mk(0)
		long := mk(idle)
		return short >= 0 && long >= short
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChunkCountPreserved: every chunk produces exactly one ChunkStat.
func TestChunkCountPreserved(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		count := int(n%30) + 1
		chunks := make([]Chunk, count)
		for i := range chunks {
			chunks[i] = Chunk{Size: 256 << 10, Idle: time.Duration(i) * 100 * time.Millisecond}
		}
		res, err := Simulate(Params{RTT: 50 * time.Millisecond, SSAI: true, Seed: seed}, chunks)
		return err == nil && len(res.Chunks) == count
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIdleOverRTOConsistent: chunks whose idle exceeded the RTO are
// exactly the restarted ones under SSAI.
func TestIdleOverRTOConsistent(t *testing.T) {
	res, err := Simulate(Params{RTT: 100 * time.Millisecond, SSAI: true},
		[]Chunk{
			{Size: 512 << 10},
			{Idle: 100 * time.Millisecond, Size: 512 << 10}, // below RTO (300ms)
			{Idle: 400 * time.Millisecond, Size: 512 << 10}, // above RTO
			{Idle: 299 * time.Millisecond, Size: 512 << 10}, // just below
			{Idle: 301 * time.Millisecond, Size: 512 << 10}, // just above
		})
	if err != nil {
		t.Fatal(err)
	}
	wantRestart := []bool{false, false, true, false, true}
	for i, c := range res.Chunks {
		if c.Restarted != wantRestart[i] {
			t.Errorf("chunk %d restarted=%v, want %v (idle %v)", i, c.Restarted, wantRestart[i], c.Idle)
		}
		if (c.IdleOverRTO > 1) != wantRestart[i] {
			t.Errorf("chunk %d IdleOverRTO=%.3f inconsistent with restart=%v", i, c.IdleOverRTO, c.Restarted)
		}
	}
}

// TestThroughputMatchesDurationAccounting verifies the Throughput
// helper against first principles.
func TestThroughputMatchesDurationAccounting(t *testing.T) {
	res, err := Simulate(Params{RTT: 100 * time.Millisecond}, []Chunk{{Size: 2 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2<<20) / res.Duration.Seconds()
	if got := res.Throughput(); got != want {
		t.Errorf("throughput = %v, want %v", got, want)
	}
}
