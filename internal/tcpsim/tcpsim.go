// Package tcpsim is a discrete-event model of a TCP connection
// carrying sequential HTTP chunk transfers, built to reproduce the
// data-transmission findings of the paper's §4: the restart of TCP
// slow-start after long inter-chunk idle times (RFC 5681 §4.1), the
// 64 KB receive-window clamp of servers that do not negotiate window
// scaling (RFC 7323), and the resulting device-type performance gap.
//
// The simulator advances in RTT-sized rounds ("fluid" TCP model): each
// round the sender transmits min(cwnd, rwnd, rate·RTT, remaining)
// bytes, then grows cwnd by slow start below ssthresh and congestion
// avoidance above it. Between chunks the sender is idle for the
// application-level gap Tsrv + Tclt (server processing plus client
// processing, Figure 11); when the gap exceeds the retransmission
// timeout and slow-start-after-idle is enabled, cwnd collapses back to
// the restart window.
package tcpsim

import (
	"errors"
	"math"
	"time"

	"mcloud/internal/randx"
)

// DefaultMSS is the maximum segment size assumed by the simulator.
const DefaultMSS = 1460

// Params configures one simulated TCP connection.
type Params struct {
	MSS       int           // segment size in bytes (default 1460)
	InitCwnd  int           // initial window in segments (default 2, per the paper's observed ramp)
	RWnd      int64         // receiver advertised window in bytes (0 = unlimited)
	RTT       time.Duration // base round-trip time
	RTTJitter float64       // multiplicative jitter stddev on per-round RTT (e.g. 0.1)
	Rate      int64         // bottleneck rate in bytes/second (0 = unlimited)
	SSAI      bool          // apply slow-start-after-idle (RFC 5681 §4.1)
	LossProb  float64       // probability of a loss event per round
	Seed      uint64        // RNG seed for jitter and loss
}

// withDefaults fills zero fields with defaults and validates.
func (p Params) withDefaults() (Params, error) {
	if p.MSS == 0 {
		p.MSS = DefaultMSS
	}
	if p.MSS < 1 {
		return p, errors.New("tcpsim: MSS must be positive")
	}
	if p.InitCwnd == 0 {
		p.InitCwnd = 2
	}
	if p.InitCwnd < 1 {
		return p, errors.New("tcpsim: InitCwnd must be positive")
	}
	if p.RTT <= 0 {
		return p, errors.New("tcpsim: RTT must be positive")
	}
	if p.LossProb < 0 || p.LossProb >= 1 {
		return p, errors.New("tcpsim: LossProb must be in [0, 1)")
	}
	return p, nil
}

// RTO returns the simulator's retransmission timeout estimate for a
// connection with the given smoothed RTT, following the approximation
// the paper uses for RFC 6298 implementations:
//
//	RTO ≈ SRTT + max(200 ms, 4·RTTVAR) ≈ RTT + max(200 ms, 2·RTT)
func RTO(rtt time.Duration) time.Duration {
	v := 2 * rtt
	if v < 200*time.Millisecond {
		v = 200 * time.Millisecond
	}
	return rtt + v
}

// Chunk describes one application-level transfer unit: Idle is the
// sender-silent gap before the chunk begins (zero for the first chunk
// of a connection), Size is the chunk payload.
type Chunk struct {
	Idle time.Duration
	Size int64
}

// Sample is one point of the flow time series: the moment a round's
// data has been handed to the network, the cumulative sequence number,
// and the bytes in flight during that round.
type Sample struct {
	At       time.Duration
	Seq      int64
	Inflight int64
}

// ChunkStat reports the fate of one chunk within a flow.
type ChunkStat struct {
	Start        time.Duration // when the chunk's first byte was sent
	TransferTime time.Duration // first byte sent to last byte acked
	Idle         time.Duration // application gap before the chunk
	IdleOverRTO  float64       // idle / RTO at the time of the gap
	Restarted    bool          // slow start was re-entered for this chunk
	StartCwnd    int64         // cwnd at the chunk's first round
}

// FlowResult is the outcome of simulating one connection.
type FlowResult struct {
	Chunks   []ChunkStat
	Samples  []Sample
	Duration time.Duration // total connection time including idles
	Restarts int           // number of slow-start restarts
	Rounds   int           // total RTT rounds consumed
	MeanRTT  time.Duration // average of the per-round RTTs drawn
}

// Throughput returns mean goodput in bytes/second over the whole flow
// including idle gaps.
func (r FlowResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	var total int64
	if n := len(r.Samples); n > 0 {
		total = r.Samples[n-1].Seq
	}
	return float64(total) / r.Duration.Seconds()
}

// flow carries the evolving connection state.
type flow struct {
	p        Params
	src      *randx.Source
	now      time.Duration
	seq      int64
	cwnd     int64 // bytes
	ssthresh int64 // bytes
	res      *FlowResult
	rttSum   time.Duration
	rttN     int
}

// Simulate runs the connection through the given chunks and returns
// per-chunk statistics and the flow time series.
func Simulate(p Params, chunks []Chunk) (FlowResult, error) {
	p, err := p.withDefaults()
	if err != nil {
		return FlowResult{}, err
	}
	f := &flow{
		p:        p,
		src:      randx.New(p.Seed),
		cwnd:     int64(p.InitCwnd * p.MSS),
		ssthresh: math.MaxInt64 / 4,
		res:      &FlowResult{},
	}
	for _, c := range chunks {
		if c.Size < 0 {
			return FlowResult{}, errors.New("tcpsim: negative chunk size")
		}
		f.transfer(c)
	}
	f.res.Duration = f.now
	if f.rttN > 0 {
		f.res.MeanRTT = f.rttSum / time.Duration(f.rttN)
	}
	return *f.res, nil
}

// roundRTT draws the RTT for one round.
func (f *flow) roundRTT() time.Duration {
	rtt := f.p.RTT
	if f.p.RTTJitter > 0 {
		m := 1 + f.p.RTTJitter*f.src.NormFloat64()
		if m < 0.3 {
			m = 0.3
		}
		rtt = time.Duration(float64(rtt) * m)
	}
	f.rttSum += rtt
	f.rttN++
	return rtt
}

// transfer moves one chunk through the connection.
func (f *flow) transfer(c Chunk) {
	stat := ChunkStat{Idle: c.Idle}

	if c.Idle > 0 {
		rto := RTO(f.p.RTT)
		stat.IdleOverRTO = float64(c.Idle) / float64(rto)
		f.now += c.Idle
		if f.p.SSAI && c.Idle > rto {
			// RFC 5681 §4.1: restart window = min(IW, cwnd).
			rw := int64(f.p.InitCwnd * f.p.MSS)
			if f.cwnd > rw {
				f.cwnd = rw
			}
			stat.Restarted = true
			f.res.Restarts++
		}
	}

	stat.Start = f.now
	stat.StartCwnd = f.cwnd
	remaining := c.Size

	if remaining == 0 {
		// A zero-byte chunk still costs a request-response round trip.
		f.now += f.roundRTT()
		f.res.Rounds++
		f.res.Chunks = append(f.res.Chunks, stat)
		return
	}

	for remaining > 0 {
		send := f.cwnd
		if f.p.RWnd > 0 && send > f.p.RWnd {
			send = f.p.RWnd
		}
		rtt := f.roundRTT()
		if f.p.Rate > 0 {
			cap := int64(float64(f.p.Rate) * rtt.Seconds())
			if cap < int64(f.p.MSS) {
				cap = int64(f.p.MSS)
			}
			if send > cap {
				send = cap
			}
		}
		if send > remaining {
			send = remaining
		}
		f.seq += send
		remaining -= send
		f.now += rtt
		f.res.Rounds++
		f.res.Samples = append(f.res.Samples, Sample{At: f.now, Seq: f.seq, Inflight: send})

		if f.p.LossProb > 0 && f.src.Bool(f.p.LossProb) {
			// Fast-recovery approximation: halve the window.
			f.ssthresh = f.cwnd / 2
			if min := int64(2 * f.p.MSS); f.ssthresh < min {
				f.ssthresh = min
			}
			f.cwnd = f.ssthresh
			continue
		}

		if f.cwnd < f.ssthresh {
			// Slow start: cwnd doubles per RTT (one MSS per ACK).
			f.cwnd *= 2
			if f.cwnd > f.ssthresh {
				f.cwnd = f.ssthresh
			}
		} else {
			// Congestion avoidance: one MSS per RTT.
			f.cwnd += int64(f.p.MSS)
		}
	}

	stat.TransferTime = f.now - stat.Start
	f.res.Chunks = append(f.res.Chunks, stat)
}

// SplitChunks cuts a file of fileSize bytes into chunkSize-sized
// chunks (the last chunk carries the remainder) with per-chunk idle
// gaps drawn from idle; the first chunk has no idle. idle may be nil
// for back-to-back transfers.
func SplitChunks(fileSize, chunkSize int64, idle func() time.Duration) []Chunk {
	if fileSize <= 0 || chunkSize <= 0 {
		return nil
	}
	n := (fileSize + chunkSize - 1) / chunkSize
	chunks := make([]Chunk, 0, n)
	for off := int64(0); off < fileSize; off += chunkSize {
		size := chunkSize
		if off+size > fileSize {
			size = fileSize - off
		}
		var gap time.Duration
		if off > 0 && idle != nil {
			gap = idle()
		}
		chunks = append(chunks, Chunk{Idle: gap, Size: size})
	}
	return chunks
}
