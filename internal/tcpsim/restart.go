package tcpsim

import (
	"time"

	"mcloud/internal/randx"
)

// RestartPolicy selects how the sender treats the congestion window
// after an application-limited idle longer than the RTO. The paper's
// §4.3 weighs three options:
//
//   - RestartSlowStart (deployed behaviour, RFC 5681 §4.1): collapse
//     cwnd to the restart window. Safe but slow — the cause of the
//     Android performance gap.
//   - KeepWindow (SSAI disabled): keep cwnd. Fast, but "the connection
//     is likely allowed to send out a large burst after the idle
//     period", risking tail loss and an expensive timeout recovery.
//   - PacedRestart (Visweswaraiah & Heidemann): keep cwnd but pace the
//     first post-idle window out over roughly one RTT until the ACK
//     clock restarts — most of KeepWindow's speed without the burst.
type RestartPolicy uint8

// Restart policies for idle periods exceeding the RTO.
const (
	RestartSlowStart RestartPolicy = iota
	KeepWindow
	PacedRestart
)

var restartNames = [...]string{"slow-start", "keep-window", "paced"}

func (p RestartPolicy) String() string { return restartNames[p] }

// BurstParams models the §4.3 caveat against simply disabling SSAI:
// dumping a full window into the path after an idle can overflow the
// bottleneck queue; losses at the tail of the burst need a
// retransmission timeout to recover.
type BurstParams struct {
	// SafeBurst is the largest post-idle burst the path absorbs
	// without loss, in bytes (think bottleneck buffer). Zero disables
	// burst-loss modelling.
	SafeBurst int64
	// LossProb is the probability that a burst exceeding SafeBurst
	// loses its tail.
	LossProb float64
	// RecoveryRTOs is the timeout cost of a tail loss, in RTO units
	// (tail losses cannot be recovered by fast retransmit; RFC 6298
	// timeout, as the paper notes citing Flach et al.).
	RecoveryRTOs float64
}

// DefaultBurst reflects a modest bottleneck buffer on a mobile path.
var DefaultBurst = BurstParams{
	SafeBurst:    32 << 10,
	LossProb:     0.5,
	RecoveryRTOs: 1,
}

// PolicyResult summarizes one flow under a restart policy.
type PolicyResult struct {
	Policy      RestartPolicy
	Duration    time.Duration
	Throughput  float64 // bytes/sec
	Restarts    int     // slow-start restarts taken
	PacedIdles  int     // idles absorbed by pacing
	BurstLosses int     // tail-loss events from unpaced post-idle bursts
}

// SimulateUploadPolicy runs an upload flow under the given restart
// policy and burst model. It reuses the transfer configuration of
// SimulateUpload; cfg.NoSSAI is ignored (the policy decides). For a
// fixed seed the idle-gap sequence is identical across policies, so
// comparisons are paired.
func SimulateUploadPolicy(cfg TransferConfig, policy RestartPolicy, burst BurstParams) (PolicyResult, error) {
	gapSrc := randx.Derive(cfg.Seed, "tcpsim/policy/gaps")
	coinSrc := randx.Derive(cfg.Seed+uint64(policy)*1000003, "tcpsim/policy/coins")
	var gaps []Gap
	chunks := SplitChunks(cfg.FileSize, cfg.chunkSize(), func() time.Duration {
		g := Gap{
			Tsrv: cfg.Server.Proc.Sample(gapSrc),
			Tclt: cfg.Device.StoreClt.Sample(gapSrc),
		}
		gaps = append(gaps, g)
		return g.Idle()
	})

	p := Params{
		RWnd:      cfg.Server.EffectiveRWnd(),
		RTT:       cfg.RTT,
		RTTJitter: cfg.RTTJitter,
		Rate:      cfg.Rate,
		SSAI:      policy == RestartSlowStart,
		LossProb:  cfg.LossProb,
		Seed:      gapSrc.Uint64(),
	}
	flow, err := Simulate(p, chunks)
	if err != nil {
		return PolicyResult{}, err
	}

	res := PolicyResult{Policy: policy, Restarts: flow.Restarts}
	duration := flow.Duration
	rto := RTO(cfg.RTT)

	// Post-process the idles the base simulator did not slow down.
	if policy != RestartSlowStart {
		for _, c := range flow.Chunks {
			if c.IdleOverRTO <= 1 {
				continue
			}
			switch policy {
			case PacedRestart:
				// Pacing spreads the first window over one extra RTT.
				duration += cfg.RTT
				res.PacedIdles++
			case KeepWindow:
				// The whole preserved window leaves at line rate; if it
				// exceeds what the path absorbs, the tail is lost and a
				// timeout recovers it.
				if burst.SafeBurst > 0 && c.StartCwnd > burst.SafeBurst && coinSrc.Bool(burst.LossProb) {
					duration += time.Duration(burst.RecoveryRTOs * float64(rto))
					res.BurstLosses++
				}
			}
		}
	}

	res.Duration = duration
	if duration > 0 {
		res.Throughput = float64(cfg.FileSize) / duration.Seconds()
	}
	return res, nil
}
