package tcpsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mcloud/internal/randx"
)

func TestRTO(t *testing.T) {
	cases := []struct {
		rtt, want time.Duration
	}{
		{50 * time.Millisecond, 250 * time.Millisecond},  // 50 + max(200, 100)
		{100 * time.Millisecond, 300 * time.Millisecond}, // 100 + max(200, 200)
		{300 * time.Millisecond, 900 * time.Millisecond}, // 300 + max(200, 600)
		{1000 * time.Millisecond, 3 * time.Second},       // 1000 + 2000
	}
	for _, c := range cases {
		if got := RTO(c.rtt); got != c.want {
			t.Errorf("RTO(%v) = %v, want %v", c.rtt, got, c.want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	valid := Params{RTT: 100 * time.Millisecond}
	if _, err := Simulate(valid, nil); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{},                  // no RTT
		{RTT: -time.Second}, // negative RTT
		{RTT: time.Second, MSS: -1},
		{RTT: time.Second, InitCwnd: -2},
		{RTT: time.Second, LossProb: 1.5},
	}
	for i, p := range bad {
		if _, err := Simulate(p, nil); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestNegativeChunkRejected(t *testing.T) {
	p := Params{RTT: 100 * time.Millisecond}
	if _, err := Simulate(p, []Chunk{{Size: -1}}); err == nil {
		t.Error("negative chunk size accepted")
	}
}

func TestAllBytesDelivered(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizes []uint32) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		var chunks []Chunk
		var total int64
		for _, s := range sizes {
			sz := int64(s % (4 << 20))
			chunks = append(chunks, Chunk{Size: sz})
			total += sz
		}
		res, err := Simulate(Params{RTT: 80 * time.Millisecond, Seed: seed, LossProb: 0.02}, chunks)
		if err != nil {
			return false
		}
		var sent int64
		if n := len(res.Samples); n > 0 {
			sent = res.Samples[n-1].Seq
		}
		return sent == total
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlowStartRampIsExponential(t *testing.T) {
	// With a 2-segment IW and no rwnd clamp, inflight should double
	// each round until the chunk is drained.
	res, err := Simulate(Params{RTT: 100 * time.Millisecond, InitCwnd: 2}, []Chunk{{Size: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Samples)-1; i++ {
		ratio := float64(res.Samples[i].Inflight) / float64(res.Samples[i-1].Inflight)
		if math.Abs(ratio-2) > 1e-9 {
			t.Fatalf("round %d inflight ratio = %.3f, want 2 (slow start)", i, ratio)
		}
	}
}

func TestRWndClampsInflight(t *testing.T) {
	const rwnd = 64 << 10
	res, err := Simulate(Params{RTT: 100 * time.Millisecond, RWnd: rwnd},
		[]Chunk{{Size: 10 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	maxInflight := int64(0)
	for _, s := range res.Samples {
		if s.Inflight > maxInflight {
			maxInflight = s.Inflight
		}
	}
	if maxInflight > rwnd {
		t.Errorf("inflight %d exceeded rwnd %d", maxInflight, rwnd)
	}
	// A 10 MB transfer must eventually saturate the window.
	if maxInflight != rwnd {
		t.Errorf("inflight peaked at %d, want %d (clamp reached)", maxInflight, rwnd)
	}
}

func TestFiveRTTRampToRwndLikePaper(t *testing.T) {
	// The paper: with IW=2 segments and RTT=100 ms, reaching a 64 KB
	// window costs about 5 extra RTTs (~0.5 s).
	res, err := Simulate(Params{RTT: 100 * time.Millisecond, InitCwnd: 2, RWnd: 64 << 10},
		[]Chunk{{Size: 4 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for _, s := range res.Samples {
		rounds++
		if s.Inflight >= 64<<10 {
			break
		}
	}
	// 2*1460 doubling: 2920, 5840, ..., reaches 65536 within 5-6 rounds.
	if rounds < 5 || rounds > 7 {
		t.Errorf("rounds to reach 64 KB window = %d, want 5-7", rounds)
	}
}

func TestSSAIRestartsAfterLongIdle(t *testing.T) {
	long := 2 * time.Second
	chunks := []Chunk{{Size: 512 << 10}, {Idle: long, Size: 512 << 10}}
	withSSAI, err := Simulate(Params{RTT: 100 * time.Millisecond, RWnd: 64 << 10, SSAI: true}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	withoutSSAI, err := Simulate(Params{RTT: 100 * time.Millisecond, RWnd: 64 << 10, SSAI: false}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if withSSAI.Restarts != 1 {
		t.Errorf("SSAI restarts = %d, want 1", withSSAI.Restarts)
	}
	if withoutSSAI.Restarts != 0 {
		t.Errorf("non-SSAI restarts = %d, want 0", withoutSSAI.Restarts)
	}
	if !withSSAI.Chunks[1].Restarted {
		t.Error("second chunk should be marked restarted")
	}
	// The restarted chunk must be slower than its non-restarted twin.
	if withSSAI.Chunks[1].TransferTime <= withoutSSAI.Chunks[1].TransferTime {
		t.Errorf("restart did not slow the chunk: %v vs %v",
			withSSAI.Chunks[1].TransferTime, withoutSSAI.Chunks[1].TransferTime)
	}
}

func TestShortIdleDoesNotRestart(t *testing.T) {
	chunks := []Chunk{{Size: 512 << 10}, {Idle: 150 * time.Millisecond, Size: 512 << 10}}
	res, err := Simulate(Params{RTT: 100 * time.Millisecond, SSAI: true}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Errorf("idle below RTO should not restart, got %d", res.Restarts)
	}
	if r := res.Chunks[1].IdleOverRTO; r <= 0 || r >= 1 {
		t.Errorf("IdleOverRTO = %.3f, want in (0, 1)", r)
	}
}

func TestRateCap(t *testing.T) {
	// 1 MB/s bottleneck, 100 ms RTT: at most ~100 KB per round.
	res, err := Simulate(Params{RTT: 100 * time.Millisecond, Rate: 1 << 20},
		[]Chunk{{Size: 8 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s.Inflight > 150<<10 {
			t.Fatalf("inflight %d far above rate*RTT", s.Inflight)
		}
	}
	if thr := res.Throughput(); thr > 1.2*(1<<20) {
		t.Errorf("throughput %.0f B/s exceeds the 1 MB/s bottleneck", thr)
	}
}

func TestLossReducesThroughput(t *testing.T) {
	// Averaged over seeds: loss events halve the window, so the mean
	// lossy duration must exceed the clean duration.
	var cleanTotal, lossyTotal time.Duration
	for seed := uint64(0); seed < 50; seed++ {
		clean, err := Simulate(Params{RTT: 50 * time.Millisecond, Seed: seed}, []Chunk{{Size: 20 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		lossy, err := Simulate(Params{RTT: 50 * time.Millisecond, Seed: seed, LossProb: 0.2}, []Chunk{{Size: 20 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		cleanTotal += clean.Duration
		lossyTotal += lossy.Duration
	}
	if lossyTotal <= cleanTotal {
		t.Errorf("mean lossy duration (%v) not above clean (%v)", lossyTotal/50, cleanTotal/50)
	}
}

func TestZeroByteChunkCostsOneRound(t *testing.T) {
	res, err := Simulate(Params{RTT: 100 * time.Millisecond}, []Chunk{{Size: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if len(res.Chunks) != 1 {
		t.Errorf("chunks = %d, want 1", len(res.Chunks))
	}
}

func TestSplitChunks(t *testing.T) {
	chunks := SplitChunks(1500<<10, 512<<10, nil)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	if chunks[0].Size != 512<<10 || chunks[1].Size != 512<<10 {
		t.Error("full chunks should be 512 KB")
	}
	if chunks[2].Size != 476<<10 {
		t.Errorf("last chunk = %d, want %d", chunks[2].Size, 476<<10)
	}
	if chunks[0].Idle != 0 {
		t.Error("first chunk must have no idle")
	}
	if SplitChunks(0, 512<<10, nil) != nil {
		t.Error("zero-size file should produce no chunks")
	}
}

func TestSplitChunksIdleSampling(t *testing.T) {
	n := 0
	chunks := SplitChunks(5<<20, 1<<20, func() time.Duration {
		n++
		return time.Duration(n) * time.Millisecond
	})
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if n != 4 {
		t.Errorf("idle sampled %d times, want 4 (not for the first chunk)", n)
	}
	for i := 1; i < 5; i++ {
		if chunks[i].Idle != time.Duration(i)*time.Millisecond {
			t.Errorf("chunk %d idle = %v", i, chunks[i].Idle)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := Params{RTT: 90 * time.Millisecond, RTTJitter: 0.2, LossProb: 0.05, Seed: 77}
	chunks := []Chunk{{Size: 3 << 20}, {Idle: time.Second, Size: 3 << 20}}
	a, err := Simulate(p, chunks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Restarts != b.Restarts || len(a.Samples) != len(b.Samples) {
		t.Error("simulation is not deterministic for a fixed seed")
	}
}

// uploadRestartFraction runs many uploads for a device profile and
// returns the fraction of inter-chunk idles that exceeded the RTO.
func uploadRestartFraction(t *testing.T, dev DeviceProfile, flows int) float64 {
	t.Helper()
	restarts, gaps := 0, 0
	for i := 0; i < flows; i++ {
		res, err := SimulateUpload(TransferConfig{
			Device:   dev,
			Server:   DefaultServer,
			FileSize: 10 << 20, // 20 chunks
			RTT:      100 * time.Millisecond,
			Seed:     uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Flow.Chunks[1:] {
			gaps++
			if c.Restarted {
				restarts++
			}
		}
	}
	return float64(restarts) / float64(gaps)
}

func TestFigure16cRestartGap(t *testing.T) {
	android := uploadRestartFraction(t, AndroidProfile, 60)
	ios := uploadRestartFraction(t, IOSProfile, 60)
	// Paper: ~60% of Android storage idles restart slow start vs ~18%
	// for iOS.
	if android < 0.50 || android > 0.70 {
		t.Errorf("Android restart fraction = %.3f, want ~0.60", android)
	}
	if ios < 0.10 || ios > 0.28 {
		t.Errorf("iOS restart fraction = %.3f, want ~0.18", ios)
	}
	if android <= ios+0.2 {
		t.Errorf("Android (%.2f) should restart far more than iOS (%.2f)", android, ios)
	}
}

func TestFigure12UploadTimeGap(t *testing.T) {
	// Median chunk upload time: ~4.1 s Android vs ~1.6 s iOS in the
	// paper. The shape to preserve: Android at least 1.5x slower.
	medianChunkTime := func(dev DeviceProfile) time.Duration {
		var times []float64
		for i := 0; i < 40; i++ {
			res, err := SimulateUpload(TransferConfig{
				Device:   dev,
				Server:   DefaultServer,
				FileSize: 8 << 20,
				RTT:      100 * time.Millisecond,
				Seed:     uint64(1000 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Flow.Chunks {
				times = append(times, c.TransferTime.Seconds())
			}
		}
		sortFloats(times)
		return time.Duration(times[len(times)/2] * float64(time.Second))
	}
	android := medianChunkTime(AndroidProfile)
	ios := medianChunkTime(IOSProfile)
	if float64(android) < 1.3*float64(ios) {
		t.Errorf("Android median chunk time (%v) should clearly exceed iOS (%v)", android, ios)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestLogNormalQuantile(t *testing.T) {
	ln := LogNormal{Median: 100 * time.Millisecond, Sigma: 0.5}
	if got := ln.Quantile(0.5); math.Abs(float64(got-100*time.Millisecond)) > float64(time.Millisecond) {
		t.Errorf("median quantile = %v", got)
	}
	src := randx.New(5)
	// Empirical q90 should match the analytic quantile.
	var xs []float64
	for i := 0; i < 100000; i++ {
		xs = append(xs, float64(ln.Sample(src)))
	}
	sortFloats(xs)
	q90 := xs[int(0.9*float64(len(xs)))]
	want := float64(ln.Quantile(0.9))
	if math.Abs(q90-want)/want > 0.03 {
		t.Errorf("empirical q90 = %v, analytic %v", time.Duration(q90), time.Duration(want))
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		if math.Abs(normQuantile(p)+normQuantile(1-p)) > 1e-6 {
			t.Errorf("normQuantile not symmetric at %v", p)
		}
	}
	if math.Abs(normQuantile(0.975)-1.959964) > 1e-4 {
		t.Errorf("normQuantile(0.975) = %v, want 1.96", normQuantile(0.975))
	}
}

func TestWindowScalingLiftsClamp(t *testing.T) {
	scaled := DefaultServer
	scaled.WindowScaling = true
	if scaled.EffectiveRWnd() <= DefaultServer.EffectiveRWnd() {
		t.Error("window scaling should raise the effective rwnd")
	}
}

func TestDownloadFasterThanUploadAtSameSize(t *testing.T) {
	// Downloads are not clamped to 64 KB, so with ample bandwidth the
	// same file moves faster than an upload for the same device.
	cfg := TransferConfig{
		Device:   IOSProfile,
		Server:   DefaultServer,
		FileSize: 20 << 20,
		RTT:      100 * time.Millisecond,
		Seed:     42,
	}
	up, err := SimulateUpload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	down, err := SimulateDownload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if down.Flow.Duration >= up.Flow.Duration {
		t.Errorf("download (%v) should be faster than clamped upload (%v)",
			down.Flow.Duration, up.Flow.Duration)
	}
}

func BenchmarkSimulateUpload(b *testing.B) {
	cfg := TransferConfig{
		Device:   AndroidProfile,
		Server:   DefaultServer,
		FileSize: 10 << 20,
		RTT:      100 * time.Millisecond,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := SimulateUpload(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
