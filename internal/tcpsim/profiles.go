package tcpsim

import (
	"math"
	"time"

	"mcloud/internal/randx"
)

// LogNormal parameterizes a lognormal sampler by its median and the
// sigma of the underlying normal (in natural-log space). It is the
// shape used for processing-time distributions throughout: positive,
// right-skewed, with a controllable tail.
type LogNormal struct {
	Median time.Duration
	Sigma  float64
}

// Sample draws one duration.
func (ln LogNormal) Sample(src *randx.Source) time.Duration {
	if ln.Median <= 0 {
		return 0
	}
	mu := math.Log(float64(ln.Median))
	return time.Duration(src.LogNormal(mu, ln.Sigma))
}

// Quantile returns the q-quantile of the distribution.
func (ln LogNormal) Quantile(q float64) time.Duration {
	if ln.Median <= 0 {
		return 0
	}
	mu := math.Log(float64(ln.Median))
	return time.Duration(math.Exp(mu + ln.Sigma*normQuantile(q)))
}

// normQuantile is the standard normal quantile (Acklam's rational
// approximation, accurate to ~1e-9 over (0,1)).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// DeviceProfile captures the client-side behaviour that differs
// between Android and iOS in the paper's measurements (Figure 16):
// the client processing time Tclt between consecutive chunks, and the
// receive window the client advertises when downloading.
type DeviceProfile struct {
	Name string
	// StoreClt is the time the client spends preparing the next chunk
	// during uploads (reading, hashing, HTTP assembly).
	StoreClt LogNormal
	// RetrieveClt is the time the client spends consuming a downloaded
	// chunk before requesting the next one.
	RetrieveClt LogNormal
	// RWnd is the client's advertised receive window during downloads;
	// both platforms negotiate window scaling, so it is large.
	RWnd int64
}

// ServerProfile captures the front-end server's behaviour: upstream
// processing time Tsrv and the advertised receive window during
// uploads (the paper's servers do not negotiate window scaling, so
// uploads are clamped at 64 KB).
type ServerProfile struct {
	Proc LogNormal // Tsrv, ~100 ms regardless of device or direction
	// RWnd is the window advertised to uploading clients.
	RWnd int64
	// WindowScaling, when true, lifts the 64 KB ceiling (the §4.3
	// remediation experiment).
	WindowScaling bool
}

// EffectiveRWnd returns the upload window limit imposed by the server.
func (sp ServerProfile) EffectiveRWnd() int64 {
	if sp.WindowScaling {
		return sp.RWnd << 7 // scaled far beyond the path BDP
	}
	if sp.RWnd == 0 {
		return 64 << 10
	}
	return sp.RWnd
}

// Calibrated profiles. The constants reproduce Figure 16: Tsrv around
// 100 ms for every flow class; Android storage Tclt ~90 ms above iOS;
// Android retrieval Tclt with a heavy tail reaching ~1 s at the 90th
// percentile versus ~0.1 s for iOS. With RTT ≈ 100 ms (RTO ≈ 300 ms)
// these gaps make ~60 % of Android storage idles exceed the RTO
// versus ~18 % on iOS (Figure 16c).
var (
	// AndroidProfile models the Android client app.
	AndroidProfile = DeviceProfile{
		Name:        "android",
		StoreClt:    LogNormal{Median: 235 * time.Millisecond, Sigma: 0.85},
		RetrieveClt: LogNormal{Median: 120 * time.Millisecond, Sigma: 1.65},
		RWnd:        4 << 20, // 4 MB observed on the Samsung Pad
	}
	// IOSProfile models the iOS client app.
	IOSProfile = DeviceProfile{
		Name:        "ios",
		StoreClt:    LogNormal{Median: 105 * time.Millisecond, Sigma: 0.75},
		RetrieveClt: LogNormal{Median: 90 * time.Millisecond, Sigma: 0.45},
		RWnd:        2 << 20, // 2 MB observed on the iPad Air 2
	}
	// DefaultServer models the production front-end.
	DefaultServer = ServerProfile{
		Proc: LogNormal{Median: 100 * time.Millisecond, Sigma: 0.45},
		RWnd: 64 << 10,
	}
)

// Gap is the decomposition of one inter-chunk idle interval.
type Gap struct {
	Tsrv, Tclt time.Duration
}

// Idle returns the total sender-idle time of the gap.
func (g Gap) Idle() time.Duration { return g.Tsrv + g.Tclt }

// TransferResult couples a flow simulation with the per-gap
// decomposition that a packet-level trace would reveal.
type TransferResult struct {
	Flow FlowResult
	Gaps []Gap
}

// TransferConfig describes one file transfer to simulate.
type TransferConfig struct {
	Device    DeviceProfile
	Server    ServerProfile
	FileSize  int64
	ChunkSize int64 // default 512 KB
	RTT       time.Duration
	RTTJitter float64
	Rate      int64 // bottleneck bytes/sec (0 = unlimited)
	SSAI      bool  // default true in deployed stacks
	NoSSAI    bool  // set to disable slow-start-after-idle explicitly
	LossProb  float64
	Seed      uint64
}

func (c TransferConfig) chunkSize() int64 {
	if c.ChunkSize <= 0 {
		return 512 << 10
	}
	return c.ChunkSize
}

func (c TransferConfig) ssai() bool { return !c.NoSSAI }

// SimulateUpload models a storage flow: the mobile device is the TCP
// sender, the server's (unscaled) receive window clamps the sending
// window, and each inter-chunk gap is the server's application-level
// acknowledgment time plus the client's preparation time.
func SimulateUpload(c TransferConfig) (TransferResult, error) {
	src := randx.Derive(c.Seed, "tcpsim/upload")
	var gaps []Gap
	chunks := SplitChunks(c.FileSize, c.chunkSize(), func() time.Duration {
		g := Gap{
			Tsrv: c.Server.Proc.Sample(src),
			Tclt: c.Device.StoreClt.Sample(src),
		}
		gaps = append(gaps, g)
		return g.Idle()
	})
	p := Params{
		RWnd:      c.Server.EffectiveRWnd(),
		RTT:       c.RTT,
		RTTJitter: c.RTTJitter,
		Rate:      c.Rate,
		SSAI:      c.ssai(),
		LossProb:  c.LossProb,
		Seed:      src.Uint64(),
	}
	flow, err := Simulate(p, chunks)
	if err != nil {
		return TransferResult{}, err
	}
	return TransferResult{Flow: flow, Gaps: gaps}, nil
}

// SimulateDownload models a retrieval flow: the server is the TCP
// sender, the client's scaled receive window is effectively unlimited,
// and each inter-chunk gap is the server's content preparation time
// plus the client's consumption time before the next chunk request.
func SimulateDownload(c TransferConfig) (TransferResult, error) {
	src := randx.Derive(c.Seed, "tcpsim/download")
	var gaps []Gap
	chunks := SplitChunks(c.FileSize, c.chunkSize(), func() time.Duration {
		g := Gap{
			Tsrv: c.Server.Proc.Sample(src),
			Tclt: c.Device.RetrieveClt.Sample(src),
		}
		gaps = append(gaps, g)
		return g.Idle()
	})
	p := Params{
		RWnd:      c.Device.RWnd,
		RTT:       c.RTT,
		RTTJitter: c.RTTJitter,
		Rate:      c.Rate,
		SSAI:      c.ssai(),
		LossProb:  c.LossProb,
		Seed:      src.Uint64(),
	}
	flow, err := Simulate(p, chunks)
	if err != nil {
		return TransferResult{}, err
	}
	return TransferResult{Flow: flow, Gaps: gaps}, nil
}
